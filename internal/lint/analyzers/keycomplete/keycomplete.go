// Package keycomplete enforces the sweep memo-cache identity invariant:
// every field of sweep.Point — every sweep axis — must be folded into the
// candidate's canonical key.
//
// The memo cache (and the on-disk cache it persists to) deduplicates
// evaluations by Point.Key; a field that shapes the evaluation but is
// missing from the key makes two different candidates alias one memo
// entry and silently serves the wrong metrics. That bug class is exactly
// why the cost-model version bump exists, and it has historically been
// caught only when someone remembered to extend the hand-written key
// test. This analyzer makes the omission a lint failure instead: it walks
// every function statically reachable from the key builders (Key and
// buildKey, so token helpers like modelToken count) and reports any Point
// field never read along the way.
//
// A field that is deliberately not an axis — e.g. the cached key string
// itself — carries //lint:nokey with a justification.
package keycomplete

import (
	"go/ast"
	"go/types"

	"optimus/internal/lint/analysis"
	"optimus/internal/lint/directive"
)

// StructName and KeyFuncs name the struct and its key-builder roots. The
// analyzer triggers on any package declaring both, so fixtures exercise
// the real code path.
var (
	StructName = "Point"
	KeyFuncs   = []string{"Key", "buildKey"}
)

// Analyzer is the key-completeness check.
var Analyzer = &analysis.Analyzer{
	Name: "keycomplete",
	Doc:  "every sweep.Point field must be referenced from Key/buildKey (directly or via a helper) or carry //lint:nokey",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	obj := pass.Pkg.Scope().Lookup(StructName)
	if obj == nil {
		return nil, nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}

	// Index every function declaration in the package by its type object,
	// so static calls resolve to bodies we can walk.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Roots: the key builders, as methods of Point or free functions.
	var work []*ast.FuncDecl
	seen := make(map[*types.Func]bool)
	for fn, fd := range decls {
		for _, name := range KeyFuncs {
			if fn.Name() == name {
				work = append(work, fd)
				seen[fn] = true
			}
		}
	}
	if len(work) == 0 {
		return nil, nil
	}

	// Point's fields by identity, for coverage matching.
	isField := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		isField[st.Field(i)] = true
	}

	// BFS over same-package static calls, recording every Point field
	// read anywhere along the way.
	covered := make(map[*types.Var]bool)
	for len(work) > 0 {
		fd := work[0]
		work = work[1:]
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok && isField[v] {
						covered[v] = true
					}
				}
			case *ast.CallExpr:
				if fn := callee(pass, n); fn != nil && fn.Pkg() == pass.Pkg && !seen[fn] {
					if fd, ok := decls[fn]; ok {
						seen[fn] = true
						work = append(work, fd)
					}
				}
			}
			return true
		})
	}

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if covered[f] {
			continue
		}
		if directive.Suppressed(pass, f.Pos(), "nokey") {
			continue
		}
		pass.Reportf(f.Pos(), "%s.%s is not folded into %v: two candidates differing only in it would alias one memo entry (annotate //lint:nokey if it is not an axis)",
			StructName, f.Name(), KeyFuncs)
	}
	return nil, nil
}

// callee resolves a call expression to its static *types.Func target
// (free function or method), or nil for dynamic calls.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
