// Package floateq reports exact equality comparisons between
// floating-point values.
//
// The cost model's reproducibility guarantee is *byte-identical results
// given pinned operation order*; comparing two independently computed
// floats with == silently depends on that pinning holding across both
// operands' entire histories, which is only valid where it was engineered
// deliberately (the degenerate-equivalence tests do exactly that — in
// test files, which this analyzer does not see). In shipped code a float
// equality is either a latent bug or a deliberate, documentable decision.
//
// Comparisons against compile-time constants (x == 0, the "is it unset /
// sentinel" idiom) are exact by construction and stay legal. Everything
// else needs an epsilon, an integer representation, or a //lint:floateq
// justification.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"optimus/internal/lint/analysis"
	"optimus/internal/lint/directive"
)

// Analyzer is the float-equality check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "reject == / != between non-constant floating-point expressions outside test files",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, y := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			// A constant operand makes the comparison exact by
			// construction: the other side either equals the stored
			// representation or it doesn't, with no op-order dependence.
			if x.Value != nil || y.Value != nil {
				return true
			}
			if directive.Suppressed(pass, be.OpPos, "floateq") {
				return true
			}
			pass.Reportf(be.OpPos, "exact float comparison %s %s %s: op order must be pinned for this to be meaningful — use an epsilon or annotate //lint:floateq",
				types.ExprString(be.X), be.Op, types.ExprString(be.Y))
			return true
		})
	}
	return nil, nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
