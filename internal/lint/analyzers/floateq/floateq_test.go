package floateq_test

import (
	"testing"

	"optimus/internal/lint/analysistest"
	"optimus/internal/lint/analyzers/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floateq.Analyzer, "fl")
}
