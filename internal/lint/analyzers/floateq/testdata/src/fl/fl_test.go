// Test files are outside the lint boundary by construction: the loader
// never parses them, so this exact comparison must produce no finding.
package fl

func eqInTest(a, b float64) bool {
	return a == b
}
