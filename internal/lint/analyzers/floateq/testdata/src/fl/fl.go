// Package fl is a floateq fixture: variable-vs-variable float equality
// fires, constant sentinels and integers stay legal, and the suppression
// path is exercised.
package fl

func Eq(a, b float64) bool {
	return a == b // want `exact float comparison a == b`
}

func Neq(a, b float32) bool {
	return a != b // want `exact float comparison a != b`
}

func Sentinel(a float64) bool {
	return a == 0 // constant operand: exact by construction
}

const Epsilon = 1e-9

func NamedConst(a float64) bool {
	return a == Epsilon // still a constant operand
}

func Ints(a, b int) bool {
	return a == b
}

func Tiebreak(a, b float64) bool {
	//lint:floateq exact compare guarding a strict-< tiebreak
	if a != b {
		return a < b
	}
	return false
}

func Bare(a, b float64) bool {
	//lint:floateq
	return a == b // want `bare //lint:floateq directive`
}
