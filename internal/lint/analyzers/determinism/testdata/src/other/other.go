// Package other is outside the determinism scope list: the same
// constructs that fire in the serve fixture must stay silent here.
package other

import (
	"math/rand"
	"time"
)

func Clock() time.Time {
	return time.Now()
}

func GlobalRand() float64 {
	return rand.Float64()
}

func RangeMap(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
