// Package serve is a determinism fixture: its base name matches the
// analyzer's scope list, so every construct here runs the real checks.
package serve

import (
	"math/rand"
	"time"
)

func Clock() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func Instrumented() time.Time {
	return time.Now() //lint:deterministic instrumentation only, never reaches results
}

func BareSuppression() time.Time {
	//lint:deterministic
	return time.Now() // want `bare //lint:deterministic directive`
}

func GlobalRand() float64 {
	return rand.Float64() // want `rand\.Float64 uses the process-global rand source`
}

func Unseeded(src rand.Source) *rand.Rand {
	return rand.New(src) // want `rand\.New without an inline seeded`
}

func Seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func RangeMap(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is randomized`
		total += v
	}
	return total
}

func RangeMapFold(m map[string]int) int {
	total := 0
	//lint:deterministic order-insensitive sum
	for _, v := range m {
		total += v
	}
	return total
}

func RangeSlice(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
