// Package workload is a determinism fixture: arrival generation feeds
// every simulator result, so the package carries the full invariant —
// its base name matches the analyzer's scope list and every construct
// here runs the real checks.
package workload

import (
	"math/rand"
	"time"
)

func Arrivals(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	out := make([]float64, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64()
		out = append(out, t)
	}
	return out
}

func WallClockRate() float64 {
	return float64(time.Now().Unix()) // want `time\.Now reads the wall clock`
}

func GlobalDraw() float64 {
	return rand.ExpFloat64() // want `rand\.ExpFloat64 uses the process-global rand source`
}

func SharedSource(src rand.Source) *rand.Rand {
	return rand.New(src) // want `rand\.New without an inline seeded`
}

func CohortShares(shares map[string]float64) float64 {
	total := 0.0
	for _, s := range shares { // want `map iteration order is randomized`
		total += s
	}
	return total
}
