package determinism_test

import (
	"testing"

	"optimus/internal/lint/analysistest"
	"optimus/internal/lint/analyzers/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "serve", "workload", "other")
}
