// Package determinism enforces the simulator's byte-identical
// reproducibility invariant at analysis time.
//
// Everything under internal/serve, internal/cluster and internal/sweep
// must produce byte-identical results at any GOMAXPROCS and across
// processes — the paper's methodology (and the memo cache's correctness)
// rests on it. The runtime tests pin this for the paths they cover; this
// analyzer rejects the constructs that break it anywhere in those
// packages:
//
//   - wall-clock reads (time.Now / time.Since / time.Until)
//   - the global math/rand source (top-level rand.* functions)
//   - rand.New over anything but an inline seeded rand.NewSource
//   - range over a map, whose iteration order is randomized per run
//
// Deliberate sites — wall-clock instrumentation that never reaches
// results, order-insensitive map folds — carry //lint:deterministic with
// a justification.
package determinism

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"optimus/internal/lint/analysis"
	"optimus/internal/lint/directive"
)

// Packages scopes the analyzer: full import paths whose packages carry
// the determinism invariant. A package also matches by bare base name so
// analysistest fixtures (import path "serve") exercise the same code
// path as the real tree.
var Packages = []string{
	"optimus/internal/workload",
	"optimus/internal/serve",
	"optimus/internal/cluster",
	"optimus/internal/sweep",
}

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "reject wall-clock, global/unseeded rand and map-iteration order in the simulator packages",
	Run:  run,
}

func inScope(pkgPath string) bool {
	for _, p := range Packages {
		if pkgPath == p || pkgPath == path.Base(p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// pkgFunc resolves call to (package path, function name) when the callee
// is a selector on an imported package, e.g. time.Now.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// seededSource reports whether the rand.New argument is an inline call to
// a seeded source constructor — the one shape whose seed is visibly
// pinned at the call site.
func seededSource(pass *analysis.Pass, arg ast.Expr) bool {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	pkg, name := pkgFunc(pass, call)
	if !strings.HasPrefix(pkg, "math/rand") {
		return false
	}
	switch name {
	case "NewSource", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name := pkgFunc(pass, call)
	switch pkg {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			if !directive.Suppressed(pass, call.Pos(), "deterministic") {
				pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulator results must be deterministic (annotate //lint:deterministic if instrumentation-only)", name)
			}
		}
	case "math/rand", "math/rand/v2":
		switch name {
		case "New":
			if len(call.Args) == 1 && seededSource(pass, call.Args[0]) {
				return
			}
			if !directive.Suppressed(pass, call.Pos(), "deterministic") {
				pass.Reportf(call.Pos(), "rand.New without an inline seeded rand.NewSource: the seed must be pinned at the construction site")
			}
		case "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			// Constructors: deterministic given their arguments.
		default:
			if !directive.Suppressed(pass, call.Pos(), "deterministic") {
				pass.Reportf(call.Pos(), "rand.%s uses the process-global rand source; draw from a seeded *rand.Rand instead", name)
			}
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if directive.Suppressed(pass, rng.Pos(), "deterministic") {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is randomized per run; collect and sort keys, or annotate //lint:deterministic if the fold is order-insensitive")
}
