// Package analysis is an offline, API-compatible subset of
// golang.org/x/tools/go/analysis — the seam the optimuslint suite is
// written against.
//
// The build environment has no module proxy access, so the real x/tools
// dependency cannot be pinned; this package mirrors the fields and
// semantics of analysis.Analyzer/Pass/Diagnostic that the suite uses, and
// switching to upstream is a find-and-replace of the import path plus
// deleting this directory. Keep it minimal: no Requires graph, no Facts,
// no SuggestedFixes — the four invariant analyzers need none of them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name, a doc string, and a Run
// function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters. It
	// must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by `optimuslint help`.
	Doc string
	// Run executes the check over one package and reports diagnostics
	// through pass.Report. The interface{} result exists for upstream
	// compatibility; the suite's analyzers return nil.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the single-package unit of work handed to an Analyzer's Run:
// the type-checked syntax trees plus a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	// Report delivers one diagnostic. The driver and analysistest install
	// their own sinks; analyzers must not assume ordering of delivery.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. Category mirrors
// upstream and tags the finding with the analyzer name for the driver's
// output.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}
