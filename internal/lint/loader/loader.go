// Package loader turns package directories into type-checked
// analysis.Pass inputs using only the standard library.
//
// Imports — both stdlib and module-internal "optimus/..." paths — are
// resolved by go/importer's source importer: go/build locates module
// packages through the go command, and everything is type-checked from
// source, so no pre-built export data (and no network) is required.
// Test files are not loaded; the lint invariants are about shipped
// simulator code, and the _test.go suffix is already every analyzer's
// test-file boundary.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: exactly the inputs an
// analysis.Pass carries.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks package directories, sharing one file
// set and one source importer (so stdlib and cross-package work is done
// once per process, not once per package).
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// New returns a Loader with a fresh file set and source importer.
func New() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Sizes is the std gc size model for the host platform — what the gc
// compiler itself would lay structs out as.
func Sizes() types.Sizes {
	return types.SizesFor(build.Default.Compiler, build.Default.GOARCH)
}

// LoadDir loads the single package in dir under the import path pkgPath,
// honoring build constraints and skipping test files.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, fmt.Errorf("loader: %w", perr)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l.imp, Sizes: Sizes()}
	pkg, err := cfg.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: typecheck %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Dir: dir, Fset: l.Fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// ModuleRoot walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("loader: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("loader: no go.mod above %s", abs)
		}
		d = parent
	}
}

// Expand resolves package patterns relative to dir into (dir, importPath)
// pairs, in sorted import-path order. Supported forms are "./..."
// (every package under the module), "./x" and "./x/..." (a directory and
// its subtree). testdata, vendor and dot-directories are never matched —
// the same dirs the go tool itself skips.
func Expand(dir string, patterns []string) ([]Package, error) {
	root, modPath, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []Package
	add := func(d string) {
		if seen[d] {
			return
		}
		seen[d] = true
		bp, err := build.Default.ImportDir(d, 0)
		if err != nil || len(bp.GoFiles) == 0 {
			return // not a package (only tests, or no Go files): skip silently, like go vet
		}
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		out = append(out, Package{Path: ip, Dir: d})
	}
	walk := func(base string) error {
		return filepath.WalkDir(base, func(p string, de os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !de.IsDir() {
				return nil
			}
			name := de.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walk(root); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(dir, strings.TrimSuffix(pat, "/..."))
			if err := walk(base); err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(dir, pat))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
