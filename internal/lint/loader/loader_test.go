package loader

import (
	"strings"
	"testing"
)

func TestModuleRoot(t *testing.T) {
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "optimus" {
		t.Errorf("module path = %q, want optimus", modPath)
	}
	if !strings.HasSuffix(root, "repo") && root == "" {
		t.Errorf("unexpected module root %q", root)
	}
}

func TestExpand(t *testing.T) {
	root, _, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Expand(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		if seen[p.Path] {
			t.Errorf("duplicate package %s", p.Path)
		}
		seen[p.Path] = true
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("testdata package leaked into expansion: %s", p.Path)
		}
	}
	for _, want := range []string{"optimus", "optimus/internal/serve", "optimus/internal/lint/loader"} {
		if !seen[want] {
			t.Errorf("expansion of ./... missed %s", want)
		}
	}
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].Path >= pkgs[i].Path {
			t.Fatalf("expansion not sorted: %s before %s", pkgs[i-1].Path, pkgs[i].Path)
		}
	}

	one, err := Expand(root, []string{"./internal/serve"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Path != "optimus/internal/serve" {
		t.Fatalf("single-dir pattern: got %v", one)
	}
}

func TestLoadDirTypeChecks(t *testing.T) {
	root, _, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := New()
	p, err := l.LoadDir(root+"/internal/units", "optimus/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if p.Pkg.Name() != "units" {
		t.Errorf("package name = %q, want units", p.Pkg.Name())
	}
	if p.Pkg.Scope().Lookup("AlmostEqual") == nil {
		t.Error("AlmostEqual not found in type-checked scope")
	}
	for _, f := range p.Files {
		if strings.HasSuffix(l.Fset.Position(f.FileStart).Filename, "_test.go") {
			t.Errorf("test file loaded: %s", l.Fset.Position(f.FileStart).Filename)
		}
	}
}
