package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

//lint:deterministic justified above
var A = 1

var B = 2 //lint:deterministic same line reason

//lint:floateq
var C = 3

var D = 4

// doc comment
//
//optimus:hotpath
func F() {}

// plain doc
func G() {}
`

func parseSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func declPos(t *testing.T, f *ast.File, name string) token.Pos {
	t.Helper()
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.GenDecl:
			for _, s := range d.Specs {
				if vs, ok := s.(*ast.ValueSpec); ok && vs.Names[0].Name == name {
					return vs.Pos()
				}
			}
		case *ast.FuncDecl:
			if d.Name.Name == name {
				return d.Pos()
			}
		}
	}
	t.Fatalf("decl %s not found", name)
	return token.NoPos
}

func TestAt(t *testing.T) {
	fset, f := parseSrc(t)
	if reason, ok := At(fset, f, declPos(t, f, "A"), "deterministic"); !ok || reason != "justified above" {
		t.Errorf("A: got (%q, %v), want line-above directive with reason", reason, ok)
	}
	if reason, ok := At(fset, f, declPos(t, f, "B"), "deterministic"); !ok || reason != "same line reason" {
		t.Errorf("B: got (%q, %v), want same-line directive with reason", reason, ok)
	}
	if reason, ok := At(fset, f, declPos(t, f, "C"), "floateq"); !ok || reason != "" {
		t.Errorf("C: got (%q, %v), want bare directive", reason, ok)
	}
	if _, ok := At(fset, f, declPos(t, f, "C"), "deterministic"); ok {
		t.Error("C: a floateq directive must not satisfy a deterministic lookup")
	}
	if _, ok := At(fset, f, declPos(t, f, "D"), "deterministic"); ok {
		t.Error("D: no directive present, none must be found")
	}
}

func TestHasPragma(t *testing.T) {
	_, f := parseSrc(t)
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		got := HasPragma(fd.Doc, "hotpath")
		want := fd.Name.Name == "F"
		if got != want {
			t.Errorf("%s: HasPragma = %v, want %v", fd.Name.Name, got, want)
		}
	}
}
