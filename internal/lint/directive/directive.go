// Package directive parses the lint annotation vocabulary:
//
//	//lint:deterministic <why>   — this nondeterminism source is deliberate
//	//lint:floateq <why>         — this exact float comparison is deliberate
//	//lint:alloc <why>           — this allocation in a hot path is deliberate
//	//lint:nokey <why>           — this sweep.Point field is not a sweep axis
//	//optimus:hotpath            — function must stay allocation-free
//
// A //lint: directive suppresses a finding only at its own site: it must
// sit on the reported line or alone on the line immediately above, and it
// must carry a justification — a bare directive is itself a finding, so
// suppressions stay self-documenting. //optimus:hotpath is not a
// suppression but an opt-in pragma in a function's doc comment.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"optimus/internal/lint/analysis"
)

// Prefix is the suppression-comment namespace.
const Prefix = "lint:"

// At looks up the //lint:<name> directive governing pos: on the same
// line, or alone on the line immediately above. It reports whether the
// directive is present and whether it carries a justification.
func At(fset *token.FileSet, file *ast.File, pos token.Pos, name string) (reason string, found bool) {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			if r, ok := parse(c.Text, name); ok {
				return r, true
			}
		}
	}
	return "", false
}

// Suppressed reports whether the finding at pos is governed by a
// //lint:<name> directive. A bare directive still suppresses the original
// finding but is reported itself — a suppression without a recorded
// reason is unreviewable, so the lint stays red until the why is written
// down.
func Suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	f := FileFor(pass.Files, pos)
	if f == nil {
		return false
	}
	reason, ok := At(pass.Fset, f, pos, name)
	if !ok {
		return false
	}
	if reason == "" {
		pass.Reportf(pos, "bare //%s%s directive: add a justification", Prefix, name)
	}
	return true
}

// FileFor returns the file in files containing pos, or nil.
func FileFor(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// HasPragma reports whether a doc comment carries the //optimus:<name>
// pragma (e.g. optimus:hotpath on a function declaration).
func HasPragma(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		t := strings.TrimPrefix(c.Text, "//")
		t = strings.TrimSuffix(t, "*/")
		t = strings.TrimSpace(strings.TrimPrefix(t, "/*"))
		if t == "optimus:"+name || strings.HasPrefix(t, "optimus:"+name+" ") {
			return true
		}
	}
	return false
}

// parse extracts the justification from one comment if it is the named
// lint directive.
func parse(text, name string) (reason string, ok bool) {
	t := strings.TrimPrefix(text, "//")
	t = strings.TrimSpace(t)
	want := Prefix + name
	if t == want {
		return "", true
	}
	if rest, ok := strings.CutPrefix(t, want+" "); ok {
		return strings.TrimSpace(rest), true
	}
	return "", false
}
