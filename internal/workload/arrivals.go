package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
)

// shapeSeedSalt decorrelates the tenant-assignment stream from the arrival
// stream, which is seeded with the raw seed. Without it the two
// rand.Sources would start in identical states.
const shapeSeedSalt = 0x2545F4914F6CDD1D

// lengthSeedSalt decorrelates the heavy-tailed length stream from both the
// arrival stream (raw seed) and the tenant-assignment stream
// (shapeSeedSalt): sigma draws must not perturb either, so the degenerate
// zero-sigma workload stays byte-identical. The constant exceeds int64, so
// the xor runs in uint64 and converts back.
const lengthSeedSalt uint64 = 0x9E3779B97F4A7C15

// AppendPoissonArrivals appends n open-loop Poisson arrival timestamps at
// rate requests/sec to dst: the cumulative sums of seeded exponential
// interarrivals. It panics on a non-positive/non-finite rate or a negative
// count — NaN or Inf timestamps would stall every downstream event loop.
func AppendPoissonArrivals(dst []float64, rate float64, n int, seed int64) []float64 {
	if !(rate > 0) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("workload: Poisson arrivals need a positive finite rate, got %g", rate))
	}
	if n < 0 {
		panic(fmt.Sprintf("workload: Poisson arrivals need a non-negative count, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / rate
		dst = append(dst, t)
	}
	return dst
}

// AppendScheduleArrivals appends n arrival timestamps of an inhomogeneous
// Poisson process shaped by a validated rate schedule, via time
// rescaling: each arrival consumes one unit-exponential draw, spent
// against segment rates until it is exhausted (a segment of rate r and
// width w absorbs r·w units; zero-rate segments absorb nothing and are
// jumped over; the final segment's rate extends indefinitely). The draw
// stream is identical to AppendPoissonArrivals' at the same seed, but the
// segment-crossing arithmetic differs from the constant-rate fast path
// even for a constant schedule — callers wanting the byte-identical
// degenerate corner must canonicalize first (CanonicalSchedule collapses
// constant schedules, and ArrivalProcess.Generate does so).
func AppendScheduleArrivals(dst []float64, sched Schedule, n int, seed int64) []float64 {
	if err := sched.Validate(); err != nil {
		panic(fmt.Sprintf("workload: schedule arrivals: %v", err))
	}
	if n < 0 {
		panic(fmt.Sprintf("workload: schedule arrivals need a non-negative count, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	seg := 0
	for i := 0; i < n; i++ {
		e := rng.ExpFloat64()
		for seg < len(sched)-1 {
			s := sched[seg]
			if span := (s.End - t) * s.Rate; e <= span {
				break
			} else {
				e -= span
				t = s.End
				seg++
			}
		}
		// Either an interior segment with enough rate-mass left, or the
		// final segment, whose positive rate extends forever.
		t += e / sched[seg].Rate
		dst = append(dst, t)
	}
	return dst
}

// AppendMixShapes deterministically assigns each of n arrival indices its
// request shape. A single-tenant mix takes the draw-free fast path, so
// the degenerate spec-wide workload leaves the arrival process's random
// stream untouched — the PR-3 byte-identity guarantee. Multi-tenant mixes
// draw tenants, weighted by share, from a second independently seeded
// stream. Entries with a non-zero PromptSigma/GenSigma then draw
// per-request lognormal lengths from a third salted stream; zero-sigma
// mixes skip that pass entirely, consuming no randomness.
func AppendMixShapes(dst []Request, mix []TenantLoad, n int, seed int64) []Request {
	start := len(dst)
	if len(mix) == 1 {
		sh := mix[0].Shape()
		for i := 0; i < n; i++ {
			dst = append(dst, sh)
		}
	} else {
		total := 0.0
		for _, t := range mix {
			total += t.Share
		}
		rng := rand.New(rand.NewSource(seed ^ shapeSeedSalt))
		for i := 0; i < n; i++ {
			x := rng.Float64() * total
			k := 0
			for k < len(mix)-1 {
				x -= mix[k].Share
				if x < 0 {
					break
				}
				k++
			}
			dst = append(dst, mix[k].Shape())
		}
	}
	applyLengthDraws(dst[start:], mix, seed)
	return dst
}

// applyLengthDraws overwrites the prompt/generation lengths of shapes
// generated from sigma-carrying mix entries with seeded lognormal draws.
// Draws are consumed in request order, prompt before generation, and only
// for fields whose sigma is non-zero — so the draw sequence is a pure
// function of (mix, shape assignment, seed), and a zero-sigma mix draws
// nothing at all.
func applyLengthDraws(shapes []Request, mix []TenantLoad, seed int64) {
	heavy := false
	for _, t := range mix {
		if t.PromptSigma != 0 || t.GenSigma != 0 {
			heavy = true
			break
		}
	}
	if !heavy {
		return
	}
	byTenant := make(map[string]TenantLoad, len(mix))
	for _, t := range mix {
		byTenant[t.Tenant] = t
	}
	rng := rand.New(rand.NewSource(int64(uint64(seed) ^ lengthSeedSalt)))
	for i := range shapes {
		t := byTenant[shapes[i].Tenant]
		if t.PromptSigma != 0 {
			lo, hi := t.PromptBounds()
			shapes[i].PromptTokens = lognormalDraw(rng, t.PromptTokens, t.PromptSigma, lo, hi)
		}
		if t.GenSigma != 0 {
			lo, hi := t.GenBounds()
			shapes[i].GenTokens = lognormalDraw(rng, t.GenTokens, t.GenSigma, lo, hi)
		}
	}
}

// lognormalDraw draws one heavy-tailed length: median·exp(sigma·z) for a
// standard normal z, rounded and clamped to [lo, hi].
func lognormalDraw(rng *rand.Rand, median int, sigma float64, lo, hi int) int {
	v := int(math.Round(float64(median) * math.Exp(sigma*rng.NormFloat64())))
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// sessionPrefixID names session s's shared context prefix. The '~' sigil
// keeps generated ids visually distinct from tenant-named prefixes; it is
// an ordinary legal prefix id (no mix separators).
func sessionPrefixID(session int) string {
	return "~s" + strconv.Itoa(session)
}

// expandSessions turns per-session base arrivals and shapes into the
// per-turn request stream: session s's turn k (1-based) arrives at
// base(s) + (k-1)·think carrying the session's whole prior context as a
// growing shared prefix — prompt (k-1)·(P+G)+P, prefix (k-1)·(P+G), where
// P/G are the session's (possibly heavy-tailed) drawn lengths, constant
// across its turns. Turn 1 carries no prefix id (there is nothing cached
// yet to share). The merged stream is stably sorted by arrival and
// truncated to n requests, so a cohort workload simulates exactly n
// requests like any other.
func expandSessions(arrivals []float64, shapes []Request, n, turns int, think float64) ([]float64, []Request) {
	sessions := len(arrivals)
	total := sessions * turns
	outT := make([]float64, 0, total)
	outS := make([]Request, 0, total)
	for s := 0; s < sessions; s++ {
		base := arrivals[s]
		sh := shapes[s]
		p, g := sh.PromptTokens, sh.GenTokens
		id := sessionPrefixID(s + 1)
		for k := 1; k <= turns; k++ {
			ctx := (k - 1) * (p + g)
			r := Request{
				Tenant:       sh.Tenant,
				PromptTokens: ctx + p,
				GenTokens:    g,
				PrefixTokens: ctx,
				Session:      s + 1,
				Turn:         k,
			}
			if k > 1 {
				r.PrefixID = id
			}
			outT = append(outT, base+float64(k-1)*think)
			outS = append(outS, r)
		}
	}
	// Stable by arrival: equal timestamps (zero think, coincident bases)
	// keep generation order — session-major, turns ascending — so the
	// expansion is deterministic and a session's turns never invert.
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return outT[idx[a]] < outT[idx[b]] })
	mergedT := make([]float64, 0, n)
	mergedS := make([]Request, 0, n)
	for _, i := range idx[:n] {
		mergedT = append(mergedT, outT[i])
		mergedS = append(mergedS, outS[i])
	}
	return mergedT, mergedS
}

// ArrivalProcess is the seeded, deterministic description of how a
// generated workload arrives: a constant Poisson rate or a piecewise
// Schedule, optionally expanded into multi-turn session cohorts. It is
// the seam serve.Run, the cluster fleet stream and the sweep evaluator
// all generate through.
type ArrivalProcess struct {
	// Rate is the constant Poisson arrival rate in requests/sec; ignored
	// when Schedule is non-empty.
	Rate float64
	// Schedule is the piecewise arrival-rate timeline; empty means the
	// constant Rate. A schedule that canonicalizes to a constant takes the
	// constant-rate fast path, byte-identical to the plain Poisson stream.
	Schedule Schedule
	// Turns expands the stream into session cohorts of this many turns
	// per client session; 0 or 1 is the ordinary single-turn stream.
	Turns int
	// Think is the pause between a session's consecutive turns, seconds.
	Think float64
	// Seed drives every stream (arrivals, tenant assignment, length
	// draws); equal seeds are byte-identical.
	Seed int64
}

// Generate produces the arrival timestamps and request shapes of n
// requests drawn from the process over the given mix, appending into the
// provided buffers (pass nil or length-zero slices; the session-cohort
// path returns fresh slices). The degenerate process — empty or constant
// schedule, zero/one turns, zero sigmas — reproduces the plain
// constant-rate Poisson stream byte-identically.
func (p ArrivalProcess) Generate(mix []TenantLoad, n int, arrivals []float64, shapes []Request) ([]float64, []Request) {
	sched, rate := CanonicalSchedule(p.Schedule, p.Rate)
	turns := p.Turns
	if turns < 1 {
		turns = 1
	}
	count := n
	if turns > 1 {
		// One base arrival per session; ceil so truncation trims rather
		// than starves.
		count = (n + turns - 1) / turns
	}
	if sched == nil {
		arrivals = AppendPoissonArrivals(arrivals, rate, count, p.Seed)
	} else {
		arrivals = AppendScheduleArrivals(arrivals, sched, count, p.Seed)
	}
	shapes = AppendMixShapes(shapes, mix, count, p.Seed)
	if turns > 1 {
		return expandSessions(arrivals, shapes, n, turns, p.Think)
	}
	return arrivals, shapes
}
