package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestScheduleValidate(t *testing.T) {
	good := Schedule{{0, 60, 5}, {60, 120, 25}, {120, 180, 0}, {180, 240, 5}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		s    Schedule
		want string
	}{
		{"empty", Schedule{}, "empty schedule"},
		{"late start", Schedule{{1, 2, 5}}, "must start at 0"},
		{"NaN bound", Schedule{{0, math.NaN(), 5}}, "must be finite"},
		{"Inf bound", Schedule{{0, math.Inf(1), 5}}, "must be finite"},
		{"zero width", Schedule{{0, 0, 5}}, "End must exceed Start"},
		{"inverted", Schedule{{0, 10, 5}, {10, 5, 5}}, "End must exceed Start"},
		{"gap", Schedule{{0, 10, 5}, {20, 30, 5}}, "must be contiguous"},
		{"overlap", Schedule{{0, 10, 5}, {5, 30, 5}}, "must be contiguous"},
		{"negative rate", Schedule{{0, 10, -1}, {10, 20, 5}}, "finite and non-negative"},
		{"NaN rate", Schedule{{0, 10, math.NaN()}, {10, 20, 5}}, "finite and non-negative"},
		{"Inf rate", Schedule{{0, 10, math.Inf(1)}, {10, 20, 5}}, "finite and non-negative"},
		{"zero final", Schedule{{0, 10, 5}, {10, 20, 0}}, "must be positive"},
	} {
		err := tc.s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestCanonicalSchedule(t *testing.T) {
	// No schedule: the pair passes through.
	if s, r := CanonicalSchedule(nil, 2.5); s != nil || r != 2.5 {
		t.Errorf("nil schedule should pass through, got (%v, %g)", s, r)
	}
	// A constant schedule collapses to its rate.
	if s, r := CanonicalSchedule(Schedule{{0, 60, 5}}, 0); s != nil || r != 5 {
		t.Errorf("single segment should collapse to rate 5, got (%v, %g)", s, r)
	}
	if s, r := CanonicalSchedule(Schedule{{0, 60, 5}, {60, 120, 5}, {120, 130, 5}}, 0); s != nil || r != 5 {
		t.Errorf("constant multi-segment should collapse to rate 5, got (%v, %g)", s, r)
	}
	// Adjacent equal-rate segments merge without collapsing the schedule.
	s, r := CanonicalSchedule(Schedule{{0, 30, 5}, {30, 60, 5}, {60, 120, 25}}, 0)
	want := Schedule{{0, 60, 5}, {60, 120, 25}}
	if !reflect.DeepEqual(s, want) || r != 0 {
		t.Errorf("merge: got (%v, %g), want (%v, 0)", s, r, want)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("canonical form should revalidate clean: %v", err)
	}
	// A genuinely piecewise schedule is untouched.
	in := Schedule{{0, 60, 5}, {60, 120, 25}}
	if s, _ := CanonicalSchedule(in, 0); !reflect.DeepEqual(s, in) {
		t.Errorf("piecewise schedule changed: %v", s)
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	for _, tc := range []string{
		"0-60:5",
		"0-60:5,60-120:25",
		"0-60:5,60-90:0,90-120:25",
		"0-0.5:2.25,0.5-3:10",
	} {
		s, err := ParseSchedule(tc)
		if err != nil {
			t.Fatalf("parse %q: %v", tc, err)
		}
		got := FormatSchedule(s)
		if got != tc {
			t.Errorf("format(parse(%q)) = %q", tc, got)
		}
		back, err := ParseSchedule(got)
		if err != nil || !reflect.DeepEqual(back, s) {
			t.Errorf("parse(format) not identity for %q: %v, %v", tc, back, err)
		}
	}
	if FormatSchedule(nil) != "" {
		t.Error("empty schedule should render empty")
	}
	// Whitespace and empty tokens are tolerated.
	s, err := ParseSchedule(" 0-60:5 , 60-120:25 ,")
	if err != nil || len(s) != 2 {
		t.Errorf("whitespace parse: %v, %v", s, err)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"", "empty schedule"},
		{"0-60", "want start-end:rate"},
		{"60:5", "want start-end:rate"},
		{"x-60:5", "bad start"},
		{"0-y:5", "bad end"},
		{"0-60:z", "bad rate"},
		{"10-60:5", "must start at 0"},
		{"0-60:5,70-80:5", "must be contiguous"},
		{"0-60:0", "must be positive"},
	} {
		if _, err := ParseSchedule(tc.in); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parse %q: want error containing %q, got %v", tc.in, tc.want, err)
		}
	}
}

// FormatSchedule must never emit scientific notation: an exponent's '-'
// would collide with the span separator and break the round trip.
func TestFormatScheduleAvoidsScientificNotation(t *testing.T) {
	s := Schedule{{0, 1e-6, 0.0000025}, {1e-6, 2e21, 5}}
	tok := FormatSchedule(s)
	if strings.ContainsAny(tok, "eE") {
		t.Fatalf("scientific notation in %q", tok)
	}
	back, err := ParseSchedule(tok)
	if err != nil || !reflect.DeepEqual(back, s) {
		t.Errorf("round trip through %q: %v, %v", tok, back, err)
	}
}

// FuzzScheduleRoundTrip pins the parse→format→parse identity: any string
// ParseSchedule accepts must render to a token that parses back to the
// same schedule and the same rendering.
func FuzzScheduleRoundTrip(f *testing.F) {
	f.Add("0-60:5")
	f.Add("0-60:5,60-120:25")
	f.Add("0-60:5,60-90:0,90-120:25")
	f.Add("0-0.5:2.25,0.5-3:10")
	f.Add(" 0-1:0.125 ,1-2:7,")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSchedule(in)
		if err != nil {
			t.Skip()
		}
		tok := FormatSchedule(s)
		back, err := ParseSchedule(tok)
		if err != nil {
			t.Fatalf("rendering %q of accepted input %q does not parse: %v", tok, in, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("round trip changed the schedule: %v vs %v (token %q)", back, s, tok)
		}
		if tok2 := FormatSchedule(back); tok2 != tok {
			t.Fatalf("rendering unstable: %q vs %q", tok2, tok)
		}
	})
}
