// Package workload generates and validates serving workloads: request
// shapes, multi-tenant mixes, replay traces, piecewise arrival-rate
// schedules, heavy-tailed length draws, and multi-turn session cohorts.
// Everything is seeded and deterministic — the serving simulator
// (internal/serve), the fleet router (internal/cluster) and the sweep
// engine (internal/sweep) all consume one ArrivalProcess abstraction, so
// a workload knob behaves identically at every layer and fingerprints
// into the sweep's memo keys.
//
// Degenerate corners are load-bearing: a constant (or empty) Schedule
// reproduces the plain Poisson stream byte-identically, zero length
// sigmas consume no randomness, and a one-turn cohort is exactly the
// flat mix — the serve-level equivalence tests pin all three.
package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// DefaultTenant names the tenant of the degenerate single-tenant workload
// the spec-wide PromptTokens/GenTokens fields describe. Trace rows with an
// empty tenant column parse to it too, so a length-only trace and the
// spec-wide fields land in the same per-tenant bucket.
const DefaultTenant = "default"

// HeavyTailCap bounds heavy-tailed length draws: a lognormal draw is
// clamped to HeavyTailCap times its median, so the simulator's KV
// geometry and step-cost engine can be configured from the spec alone
// (the extremes are known without generating the workload).
const HeavyTailCap = 8

// Request is one serving request's shape: who issued it and how many
// prompt and generation tokens it carries. The simulator prices every
// admission, decode step and KV allocation off these per-request fields.
type Request struct {
	Tenant       string
	PromptTokens int
	GenTokens    int

	// PrefixID names a shared prompt prefix: requests carrying the same id
	// share their leading PrefixTokens prompt tokens (a common system
	// prompt), and the paged admission policy caches that prefix's KV so a
	// hit charges pages and prefill for the non-shared suffix only.
	// PrefixTokens must leave at least one non-shared prompt token; zero
	// PrefixTokens (with or without an id) is the degenerate no-prefix
	// request, byte-identical to the pre-prefix behavior.
	PrefixID     string
	PrefixTokens int

	// Session and Turn mark a multi-turn cohort row: Session is the
	// 1-based session number and Turn the 1-based turn within it. Turn
	// n+1's prompt includes the session's prior context, so PrefixTokens
	// grows turn over turn and the shared-prefix cache is exercised the
	// way production sessions exercise it. Both zero is the ordinary
	// single-turn request; a session row allows its prefix to grow across
	// occurrences of one PrefixID where independent shapes must agree.
	Session int
	Turn    int
}

// Context is the request's full KV span.
func (r Request) Context() int { return r.PromptTokens + r.GenTokens }

// TenantLoad is one tenant's contribution to a generated workload mix: a
// relative share of the arrival rate (shares are weights — they need not
// sum to 1) and the prompt/generation shape of its requests.
type TenantLoad struct {
	Tenant       string
	Share        float64
	PromptTokens int
	GenTokens    int

	// PrefixID/PrefixTokens mark the leading PrefixTokens prompt tokens of
	// every request this entry generates as a shared prefix (see
	// Request.PrefixID). Distinct entries may share one PrefixID — with one
	// consistent PrefixTokens — to model tenants issuing the same system
	// prompt.
	PrefixID     string
	PrefixTokens int

	// PromptSigma/GenSigma make the entry's lengths heavy-tailed: when
	// non-zero, each generated request draws its prompt/generation length
	// from a seeded lognormal whose median is PromptTokens/GenTokens and
	// whose log-space standard deviation is the sigma, clamped to
	// [max(1, PrefixTokens+1), HeavyTailCap·median]. Zero sigmas draw
	// nothing and consume no randomness — the constant-length mix is
	// byte-identical to the pre-sigma behavior.
	PromptSigma float64
	GenSigma    float64
}

// Shape converts the load entry to the (median) shape its requests carry.
func (t TenantLoad) Shape() Request {
	return Request{
		Tenant: t.Tenant, PromptTokens: t.PromptTokens, GenTokens: t.GenTokens,
		PrefixID: t.PrefixID, PrefixTokens: t.PrefixTokens,
	}
}

// PromptBounds returns the smallest and largest prompt length the entry
// can generate: the fixed length when PromptSigma is zero, the lognormal
// clamp bounds otherwise.
func (t TenantLoad) PromptBounds() (min, max int) {
	if t.PromptSigma == 0 {
		return t.PromptTokens, t.PromptTokens
	}
	lo := t.PrefixTokens + 1
	if lo < 1 {
		lo = 1
	}
	return lo, HeavyTailCap * t.PromptTokens
}

// GenBounds returns the smallest and largest generation length the entry
// can generate (see PromptBounds).
func (t TenantLoad) GenBounds() (min, max int) {
	if t.GenSigma == 0 {
		return t.GenTokens, t.GenTokens
	}
	return 1, HeavyTailCap * t.GenTokens
}

// TraceEvent is one replayed request: an absolute arrival time plus its
// shape. A trace fixes the whole arrival process, so specs carrying one
// leave Arrival/Rate/Clients unset.
type TraceEvent struct {
	Arrival float64
	Request
}

// ValidateTenantName rejects names that would corrupt rendered workload
// artifacts: FormatMix joins entries with ',' and fields with ':'
// unescaped, so a tenant name carrying either separator lets two distinct
// workloads render to one identical token — the sweep's CSV mix column
// and memoized workload fingerprints would then silently alias the wrong
// cached result. Leading/trailing whitespace is rejected too: ParseMix
// trims it, so such a name can never round-trip through its own
// rendering.
func ValidateTenantName(name string) error {
	if name == "" {
		return fmt.Errorf("empty tenant name")
	}
	// Two IndexByte scans, not ContainsAny: this runs on every
	// Instance.Push, and ContainsAny's rune machinery is measurable there.
	if strings.IndexByte(name, ':') >= 0 || strings.IndexByte(name, ',') >= 0 {
		return fmt.Errorf("tenant name %q contains a mix separator (':' and ',' are reserved)", name)
	}
	if name != strings.TrimSpace(name) {
		return fmt.Errorf("tenant name %q carries leading or trailing whitespace", name)
	}
	return nil
}

// ValidatePrefix checks one request shape's shared-prefix fields: a
// non-negative prefix that leaves at least one non-shared prompt token (the
// prefill pass must always have a suffix to price), a PrefixID whenever the
// prefix is non-empty, and an id that survives the mix/trace renderings
// (ValidateTenantName's separator rules). A zero-token prefix with an id is
// legal — it is the degenerate no-prefix request the equivalence tests pin.
func ValidatePrefix(prefixID string, prefixTokens, promptTokens int) error {
	if prefixTokens < 0 {
		return fmt.Errorf("negative prefix length %d", prefixTokens)
	}
	if prefixTokens > 0 && prefixTokens >= promptTokens {
		return fmt.Errorf("prefix of %d tokens must leave at least one non-shared prompt token (prompt is %d)",
			prefixTokens, promptTokens)
	}
	if prefixTokens > 0 && prefixID == "" {
		return fmt.Errorf("a %d-token prefix needs a PrefixID", prefixTokens)
	}
	if prefixID != "" {
		if err := ValidateTenantName(prefixID); err != nil {
			return fmt.Errorf("prefix id: %w", err)
		}
	}
	return nil
}

// prefixConsistency folds one shape's prefix into the id→length map shared
// by ValidateMix and ValidateTrace: a PrefixID names one concrete token
// sequence, so every shape carrying it must agree on its length — except
// session rows, whose per-turn prefix is the session's growing context and
// may only extend (never shrink) across occurrences.
func prefixConsistency(seen map[string]int, prefixID string, prefixTokens int, session bool) (map[string]int, error) {
	if prefixID == "" {
		return seen, nil
	}
	if seen == nil {
		seen = make(map[string]int, 4)
	}
	prev, ok := seen[prefixID]
	switch {
	case !ok:
	case session:
		if prefixTokens < prev {
			return seen, fmt.Errorf("session prefix %q shrank from %d to %d tokens — a session's context only grows",
				prefixID, prev, prefixTokens)
		}
	case prev != prefixTokens:
		return seen, fmt.Errorf("prefix %q spans %d tokens in one shape and %d in another — a shared prefix has one length",
			prefixID, prev, prefixTokens)
	}
	seen[prefixID] = prefixTokens
	return seen, nil
}

// validateSigma checks one heavy-tail sigma: finite and non-negative
// (NaN fails the negated comparison).
func validateSigma(sigma float64, field string) error {
	if !(sigma >= 0) || math.IsInf(sigma, 0) {
		return fmt.Errorf("%s sigma %g not finite and non-negative", field, sigma)
	}
	return nil
}

// ValidateMix checks a workload mix: non-empty, unique separator-free
// tenant names, positive finite shares, at least one prompt and one
// generated token per tenant, and finite non-negative length sigmas.
// Shared by serve.Spec and the sweep grid validation.
func ValidateMix(mix []TenantLoad) error {
	if len(mix) == 0 {
		return fmt.Errorf("workload: empty mix")
	}
	seen := make(map[string]bool, len(mix))
	var prefixes map[string]int
	for _, t := range mix {
		if err := ValidateTenantName(t.Tenant); err != nil {
			return fmt.Errorf("workload: mix entry: %w", err)
		}
		if seen[t.Tenant] {
			return fmt.Errorf("workload: duplicate mix tenant %q", t.Tenant)
		}
		seen[t.Tenant] = true
		if !(t.Share > 0) || math.IsInf(t.Share, 0) {
			return fmt.Errorf("workload: tenant %q needs a positive finite share, got %g", t.Tenant, t.Share)
		}
		if t.PromptTokens < 1 {
			return fmt.Errorf("workload: tenant %q needs a positive prompt length, got %d", t.Tenant, t.PromptTokens)
		}
		if t.GenTokens < 1 {
			return fmt.Errorf("workload: tenant %q needs at least one generated token, got %d", t.Tenant, t.GenTokens)
		}
		if err := validateSigma(t.PromptSigma, "prompt"); err != nil {
			return fmt.Errorf("workload: tenant %q: %w", t.Tenant, err)
		}
		if err := validateSigma(t.GenSigma, "generation"); err != nil {
			return fmt.Errorf("workload: tenant %q: %w", t.Tenant, err)
		}
		if err := ValidatePrefix(t.PrefixID, t.PrefixTokens, t.PromptTokens); err != nil {
			return fmt.Errorf("workload: tenant %q: %w", t.Tenant, err)
		}
		// A heavy-tailed prompt with a shared prefix stays legal only
		// because the draw clamps to PrefixTokens+1; the median itself must
		// still clear the prefix (ValidatePrefix above uses the median).
		var err error
		if prefixes, err = prefixConsistency(prefixes, t.PrefixID, t.PrefixTokens, false); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	return nil
}

// ValidateTrace checks a replay trace: non-empty, finite non-negative
// arrival times in non-decreasing order, a well-formed shape per event,
// and coherent session columns (Session and Turn are set together, and a
// session prefix only grows). Shared by serve.Spec and the sweep grid
// validation.
func ValidateTrace(trace []TraceEvent) error {
	if len(trace) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	prev := 0.0
	var prefixes map[string]int
	for i, ev := range trace {
		if !(ev.Arrival >= prev) || math.IsInf(ev.Arrival, 0) {
			return fmt.Errorf("workload: trace event %d: arrival %g not finite and non-decreasing (previous %g)",
				i, ev.Arrival, prev)
		}
		prev = ev.Arrival
		if err := ValidateTenantName(ev.Tenant); err != nil {
			return fmt.Errorf("workload: trace event %d: %w", i, err)
		}
		if ev.PromptTokens < 1 {
			return fmt.Errorf("workload: trace event %d needs a positive prompt length, got %d", i, ev.PromptTokens)
		}
		if ev.GenTokens < 1 {
			return fmt.Errorf("workload: trace event %d needs at least one generated token, got %d", i, ev.GenTokens)
		}
		if ev.Session < 0 || ev.Turn < 0 {
			return fmt.Errorf("workload: trace event %d: negative session fields (session %d, turn %d)", i, ev.Session, ev.Turn)
		}
		if (ev.Session > 0) != (ev.Turn > 0) {
			return fmt.Errorf("workload: trace event %d: Session and Turn mark a cohort row together (session %d, turn %d)",
				i, ev.Session, ev.Turn)
		}
		if err := ValidatePrefix(ev.PrefixID, ev.PrefixTokens, ev.PromptTokens); err != nil {
			return fmt.Errorf("workload: trace event %d: %w", i, err)
		}
		var err error
		if prefixes, err = prefixConsistency(prefixes, ev.PrefixID, ev.PrefixTokens, ev.Session > 0); err != nil {
			return fmt.Errorf("workload: trace event %d: %w", i, err)
		}
	}
	return nil
}

// MixContext returns the largest prompt+generation context any mix tenant
// can reach — the bound KV geometry and page-size canonicalization use.
// Heavy-tailed entries contribute their clamp maxima.
func MixContext(mix []TenantLoad) int {
	max := 0
	for _, t := range mix {
		_, pmax := t.PromptBounds()
		_, gmax := t.GenBounds()
		if c := pmax + gmax; c > max {
			max = c
		}
	}
	return max
}

// TraceContext returns the largest prompt+generation context of a trace.
func TraceContext(trace []TraceEvent) int {
	max := 0
	for _, ev := range trace {
		if c := ev.Context(); c > max {
			max = c
		}
	}
	return max
}

// parseLength parses one mix length field: a plain integer median, or
// "median~sigma" for a heavy-tailed lognormal draw.
func parseLength(field string) (median int, sigma float64, err error) {
	base, sig, ok := strings.Cut(field, "~")
	median, err = strconv.Atoi(base)
	if err != nil {
		return 0, 0, err
	}
	if ok {
		sigma, err = strconv.ParseFloat(sig, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad sigma: %w", err)
		}
	}
	return median, sigma, nil
}

// formatLength renders one mix length field back into parseLength's form.
func formatLength(median int, sigma float64) string {
	if sigma == 0 {
		return strconv.Itoa(median)
	}
	return strconv.Itoa(median) + "~" + strconv.FormatFloat(sigma, 'g', -1, 64)
}

// ParseMix parses the CLI mix syntax: comma-separated
// "tenant:share:prompt:gen" entries, e.g.
// "chat:0.7:200:200,batch:0.3:2000:100". A fifth field marks the entry's
// leading prompt tokens as a shared prefix ("chat:0.7:200:200:120" — the
// prefix id defaults to the tenant name), and a sixth names the prefix id
// explicitly so distinct tenants can share one prefix
// ("a:1:200:200:120:sys,b:1:300:100:120:sys"). The prompt and gen fields
// accept a "median~sigma" suffix for heavy-tailed lognormal lengths
// ("chat:1:200~1.2:200" draws prompts around a 200-token median).
func ParseMix(s string) ([]TenantLoad, error) {
	var out []TenantLoad
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		parts := strings.Split(tok, ":")
		if len(parts) < 4 || len(parts) > 6 {
			return nil, fmt.Errorf("workload: mix entry %q: want tenant:share:prompt[~sigma]:gen[~sigma][:prefix[:prefix-id]]", tok)
		}
		share, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: mix entry %q: bad share: %w", tok, err)
		}
		prompt, psigma, err := parseLength(parts[2])
		if err != nil {
			return nil, fmt.Errorf("workload: mix entry %q: bad prompt length: %w", tok, err)
		}
		gen, gsigma, err := parseLength(parts[3])
		if err != nil {
			return nil, fmt.Errorf("workload: mix entry %q: bad generation length: %w", tok, err)
		}
		t := TenantLoad{
			Tenant: parts[0], Share: share,
			PromptTokens: prompt, GenTokens: gen,
			PromptSigma: psigma, GenSigma: gsigma,
		}
		if len(parts) >= 5 {
			t.PrefixTokens, err = strconv.Atoi(parts[4])
			if err != nil {
				return nil, fmt.Errorf("workload: mix entry %q: bad prefix length: %w", tok, err)
			}
			if t.PrefixTokens > 0 {
				t.PrefixID = t.Tenant
			}
			if len(parts) == 6 {
				t.PrefixID = parts[5]
			}
		}
		out = append(out, t)
	}
	if err := ValidateMix(out); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatMix renders a mix back into the ParseMix syntax — the canonical
// one-token rendering the sweep writers use. Prefix-free constant-length
// entries keep the four-field form, so every pre-prefix rendering (and
// the fingerprints derived from it) is unchanged.
func FormatMix(mix []TenantLoad) string {
	parts := make([]string, len(mix))
	for i, t := range mix {
		prompt := formatLength(t.PromptTokens, t.PromptSigma)
		gen := formatLength(t.GenTokens, t.GenSigma)
		switch {
		case t.PrefixID == "" && t.PrefixTokens == 0:
			parts[i] = fmt.Sprintf("%s:%g:%s:%s", t.Tenant, t.Share, prompt, gen)
		case t.PrefixID == t.Tenant && t.PrefixTokens > 0:
			parts[i] = fmt.Sprintf("%s:%g:%s:%s:%d", t.Tenant, t.Share, prompt, gen, t.PrefixTokens)
		default:
			parts[i] = fmt.Sprintf("%s:%g:%s:%s:%d:%s", t.Tenant, t.Share, prompt, gen, t.PrefixTokens, t.PrefixID)
		}
	}
	return strings.Join(parts, ",")
}
