package workload

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseTrace reads a serving trace in CSV form: one request per row as
// "arrival,tenant,prompt,gen" (v1),
// "arrival,tenant,prompt,gen,prefix_id,prefix_tokens" (v2), or
// "arrival,tenant,prompt,gen,prefix_id,prefix_tokens,session,turn" (v3,
// the session-cohort schema), with an optional header row (detected by a
// non-numeric first field). Every row carries the column count of the
// first, so the schema version is fixed per file. An empty tenant column
// maps to DefaultTenant; an empty prefix_id with a non-zero prefix_tokens
// defaults to the row's tenant (the ParseMix rule); empty session/turn
// columns mean zero (an ordinary single-turn row). A leading UTF-8
// byte-order mark is stripped — spreadsheet exports routinely prepend
// one, and it would otherwise glue onto the first header field (a
// U+FEFF-prefixed "arrival") and defeat the header detection. The parsed
// trace is validated (finite sorted arrivals, positive shapes, consistent
// prefixes, coherent session columns).
func ParseTrace(r io.Reader) ([]TraceEvent, error) {
	br := bufio.NewReader(r)
	if b, err := br.Peek(3); err == nil && b[0] == 0xEF && b[1] == 0xBB && b[2] == 0xBF {
		br.Discard(3)
	}
	cr := csv.NewReader(br)
	// 0: the first row fixes the column count (4, 6 or 8, checked below)
	// and every later row must match it.
	cr.FieldsPerRecord = 0
	cr.TrimLeadingSpace = true
	var out []TraceEvent
	for row := 0; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: %w", row, err)
		}
		for i := range rec {
			rec[i] = strings.TrimSpace(rec[i])
		}
		if row == 0 {
			if len(rec) != 4 && len(rec) != 6 && len(rec) != 8 {
				return nil, fmt.Errorf("workload: trace row 0 has %d columns, want 4 (arrival,tenant,prompt,gen), 6 (…,prefix_id,prefix_tokens) or 8 (…,session,turn)", len(rec))
			}
			_, arrErr := strconv.ParseFloat(rec[0], 64)
			_, promptErr := strconv.Atoi(rec[2])
			// A header is non-numeric across the board; a data row whose
			// arrival alone is malformed must fail loudly below rather
			// than vanish as a misdetected header.
			if arrErr != nil && promptErr != nil {
				continue // header row
			}
		}
		arrival, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad arrival time: %w", row, err)
		}
		prompt, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad prompt length: %w", row, err)
		}
		gen, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad generation length: %w", row, err)
		}
		tenant := rec[1]
		if tenant == "" {
			tenant = DefaultTenant
		}
		ev := TraceEvent{
			Arrival: arrival,
			Request: Request{Tenant: tenant, PromptTokens: prompt, GenTokens: gen},
		}
		if len(rec) >= 6 {
			ev.PrefixID = rec[4]
			if rec[5] != "" {
				ev.PrefixTokens, err = strconv.Atoi(rec[5])
				if err != nil {
					return nil, fmt.Errorf("workload: trace row %d: bad prefix length: %w", row, err)
				}
			}
			if ev.PrefixID == "" && ev.PrefixTokens > 0 {
				ev.PrefixID = tenant
			}
		}
		if len(rec) == 8 {
			if rec[6] != "" {
				ev.Session, err = strconv.Atoi(rec[6])
				if err != nil {
					return nil, fmt.Errorf("workload: trace row %d: bad session number: %w", row, err)
				}
			}
			if rec[7] != "" {
				ev.Turn, err = strconv.Atoi(rec[7])
				if err != nil {
					return nil, fmt.Errorf("workload: trace row %d: bad turn number: %w", row, err)
				}
			}
		}
		out = append(out, ev)
	}
	if err := ValidateTrace(out); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatTrace renders a trace back into ParseTrace's CSV form with a
// header row: the eight-column v3 schema when any event carries a session
// field, the six-column v2 schema when any carries only a prefix field,
// and the four-column v1 schema otherwise (so pre-prefix and pre-session
// traces render exactly as before). For a valid trace,
// ParseTrace(FormatTrace(t)) == t — the round-trip the trace fuzz
// harness pins.
func FormatTrace(w io.Writer, trace []TraceEvent) error {
	v2, v3 := false, false
	for _, ev := range trace {
		if ev.PrefixID != "" || ev.PrefixTokens != 0 {
			v2 = true
		}
		if ev.Session != 0 || ev.Turn != 0 {
			v3 = true
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"arrival", "tenant", "prompt", "gen"}
	if v2 || v3 {
		header = append(header, "prefix_id", "prefix_tokens")
	}
	if v3 {
		header = append(header, "session", "turn")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("workload: format trace: %w", err)
	}
	rec := make([]string, 0, 8)
	for _, ev := range trace {
		rec = append(rec[:0],
			strconv.FormatFloat(ev.Arrival, 'g', -1, 64),
			ev.Tenant,
			strconv.Itoa(ev.PromptTokens),
			strconv.Itoa(ev.GenTokens),
		)
		if v2 || v3 {
			rec = append(rec, ev.PrefixID, strconv.Itoa(ev.PrefixTokens))
		}
		if v3 {
			rec = append(rec, strconv.Itoa(ev.Session), strconv.Itoa(ev.Turn))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: format trace: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("workload: format trace: %w", err)
	}
	return nil
}
