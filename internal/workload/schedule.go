package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Segment is one piece of a piecewise-constant arrival-rate schedule:
// Rate requests/sec over the half-open interval [Start, End) seconds of
// simulated time.
type Segment struct {
	Start, End float64
	Rate       float64
}

// Schedule is a piecewise-constant arrival-rate timeline: contiguous
// segments starting at time zero. The last segment's rate extends past
// its End indefinitely (a schedule shapes the early arrivals; the stream
// must still be able to emit any request count), which is what makes a
// single-segment schedule exactly a constant rate. Interior segments may
// carry a zero rate — a quiet period the arrival stream jumps over — but
// the final segment's rate must be positive. An empty (nil) Schedule
// means "no schedule": the plain constant-rate Poisson process.
type Schedule []Segment

// Validate checks the schedule: non-empty, first segment starting at
// zero, finite positive-length contiguous segments, finite non-negative
// rates, and a positive final rate.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("workload: empty schedule")
	}
	if s[0].Start != 0 {
		return fmt.Errorf("workload: schedule starts at %g — the first segment must start at 0", s[0].Start)
	}
	for i, seg := range s {
		if math.IsNaN(seg.Start) || math.IsInf(seg.Start, 0) || math.IsNaN(seg.End) || math.IsInf(seg.End, 0) {
			return fmt.Errorf("workload: schedule segment %d spans [%g, %g) — bounds must be finite", i, seg.Start, seg.End)
		}
		if !(seg.End > seg.Start) {
			return fmt.Errorf("workload: schedule segment %d spans [%g, %g) — End must exceed Start", i, seg.Start, seg.End)
		}
		if i > 0 && seg.Start != s[i-1].End { //lint:floateq contiguity is exact by construction — parsed endpoints are shared literals, not computed values
			return fmt.Errorf("workload: schedule segment %d starts at %g but segment %d ends at %g — segments must be contiguous",
				i, seg.Start, i-1, s[i-1].End)
		}
		if !(seg.Rate >= 0) || math.IsInf(seg.Rate, 0) {
			return fmt.Errorf("workload: schedule segment %d has rate %g — rates must be finite and non-negative", i, seg.Rate)
		}
	}
	if !(s[len(s)-1].Rate > 0) {
		return fmt.Errorf("workload: the final schedule segment extends indefinitely — its rate must be positive, got %g",
			s[len(s)-1].Rate)
	}
	return nil
}

// CanonicalSchedule reduces a (Schedule, Rate) pair to canonical form:
// adjacent equal-rate segments merge, and a schedule that is constant
// after merging collapses to (nil, rate) — the plain Poisson form — so a
// degenerate schedule fingerprints (and simulates) identically to the
// rate it encodes. With no schedule the pair passes through unchanged.
// The input is assumed validated; the canonical form revalidates clean.
func CanonicalSchedule(s Schedule, rate float64) (Schedule, float64) {
	if len(s) == 0 {
		return nil, rate
	}
	out := Schedule{s[0]}
	for _, seg := range s[1:] {
		if last := &out[len(out)-1]; seg.Rate == last.Rate { //lint:floateq canonicalization merges exactly-equal rates only; nearly-equal segments are distinct on purpose
			last.End = seg.End
			continue
		}
		out = append(out, seg)
	}
	if len(out) == 1 {
		// One segment whose rate extends forever is a constant rate.
		return nil, out[0].Rate
	}
	return out, 0
}

// ParseSchedule parses the CLI schedule syntax: comma-separated
// "start-end:rate" segments in seconds and requests/sec, e.g.
// "0-60:5,60-120:25" — a 5 req/s baseline with a 25 req/s burst from
// t=60s on. The parsed schedule is validated.
func ParseSchedule(s string) (Schedule, error) {
	var out Schedule
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		span, rateStr, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("workload: schedule segment %q: want start-end:rate", tok)
		}
		startStr, endStr, ok := strings.Cut(span, "-")
		if !ok {
			return nil, fmt.Errorf("workload: schedule segment %q: want start-end:rate", tok)
		}
		start, err := strconv.ParseFloat(startStr, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: schedule segment %q: bad start: %w", tok, err)
		}
		end, err := strconv.ParseFloat(endStr, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: schedule segment %q: bad end: %w", tok, err)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: schedule segment %q: bad rate: %w", tok, err)
		}
		out = append(out, Segment{Start: start, End: end, Rate: rate})
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatSchedule renders a schedule back into ParseSchedule's syntax —
// the canonical one-token rendering Point.Key fingerprints. An empty
// schedule renders empty. Times use the 'f' float form (never scientific
// notation): an exponent's '-' would collide with the span separator and
// break the parse→format→parse identity the fuzz harness pins.
func FormatSchedule(s Schedule) string {
	if len(s) == 0 {
		return ""
	}
	parts := make([]string, len(s))
	for i, seg := range s {
		parts[i] = strconv.FormatFloat(seg.Start, 'f', -1, 64) + "-" +
			strconv.FormatFloat(seg.End, 'f', -1, 64) + ":" +
			strconv.FormatFloat(seg.Rate, 'f', -1, 64)
	}
	return strings.Join(parts, ",")
}
