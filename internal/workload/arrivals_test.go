package workload

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestAppendPoissonArrivalsDeterministic(t *testing.T) {
	a := AppendPoissonArrivals(nil, 2, 64, 7)
	b := AppendPoissonArrivals(nil, 2, 64, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds must be byte-identical")
	}
	c := AppendPoissonArrivals(nil, 2, 64, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
	if !sort.Float64sAreSorted(a) {
		t.Fatal("arrivals must be non-decreasing")
	}
	// Appending extends the destination in place.
	ext := AppendPoissonArrivals(a[:len(a):len(a)], 2, 4, 9)
	if len(ext) != 68 || !reflect.DeepEqual(ext[:64], a) {
		t.Fatal("append should extend dst without disturbing the prefix")
	}
}

func TestAppendPoissonArrivalsPanics(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		n    int
	}{{0, 4}, {-1, 4}, {math.NaN(), 4}, {math.Inf(1), 4}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %g n %d should panic", tc.rate, tc.n)
				}
			}()
			AppendPoissonArrivals(nil, tc.rate, tc.n, 1)
		}()
	}
}

func TestAppendScheduleArrivalsPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid schedule should panic")
			}
		}()
		AppendScheduleArrivals(nil, Schedule{{1, 2, 5}}, 4, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative count should panic")
			}
		}()
		AppendScheduleArrivals(nil, Schedule{{0, 10, 5}}, -1, 1)
	}()
}

// A burst segment must concentrate arrivals: the same unit-exponential
// stream spent against a 10x rate advances time 10x slower.
func TestAppendScheduleArrivalsShapesRate(t *testing.T) {
	sched := Schedule{{0, 100, 0.5}, {100, 200, 20}}
	got := AppendScheduleArrivals(nil, sched, 400, 3)
	if !sort.Float64sAreSorted(got) {
		t.Fatal("arrivals must be non-decreasing")
	}
	early, burst := 0, 0
	for _, ts := range got {
		switch {
		case ts < 100:
			early++
		case ts < 200:
			burst++
		}
	}
	// ~50 arrivals fit the first segment (0.5/s over 100 s), ~2000 would fit
	// the burst; with 400 requests nearly all land in the burst window.
	if early > 80 || burst < 300 {
		t.Fatalf("burst did not shape arrivals: %d early, %d burst of %d", early, burst, len(got))
	}
}

// Zero-rate interior segments absorb no probability mass: no arrival may
// land strictly inside a quiet period.
func TestAppendScheduleArrivalsJumpsQuietPeriods(t *testing.T) {
	sched := Schedule{{0, 10, 5}, {10, 20, 0}, {20, 30, 5}}
	got := AppendScheduleArrivals(nil, sched, 200, 11)
	for _, ts := range got {
		if ts > 10 && ts < 20 {
			t.Fatalf("arrival %g inside the zero-rate window", ts)
		}
	}
}

// The final segment's rate extends indefinitely: any request count can be
// generated even when the schedule's span is short.
func TestAppendScheduleArrivalsExtendsFinalRate(t *testing.T) {
	sched := Schedule{{0, 1, 100}, {1, 2, 0.1}}
	got := AppendScheduleArrivals(nil, sched, 500, 5)
	if len(got) != 500 {
		t.Fatalf("want 500 arrivals, got %d", len(got))
	}
	if last := got[len(got)-1]; last <= 2 {
		t.Fatalf("tail should spill past the schedule span, last arrival %g", last)
	}
}

func TestAppendMixShapesSingleTenantFastPath(t *testing.T) {
	mix := []TenantLoad{{Tenant: "chat", Share: 1, PromptTokens: 100, GenTokens: 50}}
	got := AppendMixShapes(nil, mix, 8, 42)
	for _, r := range got {
		if r.Tenant != "chat" || r.PromptTokens != 100 || r.GenTokens != 50 {
			t.Fatalf("unexpected shape %+v", r)
		}
	}
}

func TestAppendMixShapesWeighted(t *testing.T) {
	mix := []TenantLoad{
		{Tenant: "a", Share: 9, PromptTokens: 10, GenTokens: 10},
		{Tenant: "b", Share: 1, PromptTokens: 20, GenTokens: 20},
	}
	got := AppendMixShapes(nil, mix, 1000, 1)
	counts := map[string]int{}
	for _, r := range got {
		counts[r.Tenant]++
	}
	if counts["a"] < 800 || counts["b"] < 50 {
		t.Fatalf("shares not respected: %v", counts)
	}
	again := AppendMixShapes(nil, mix, 1000, 1)
	if !reflect.DeepEqual(got, again) {
		t.Fatal("equal seeds must assign identical tenants")
	}
}

// Zero-sigma mixes must not consume length randomness: adding a sigma to
// one tenant must not perturb another tenant's constant lengths, and the
// tenant-assignment sequence must be unchanged.
func TestLengthDrawsDecorrelated(t *testing.T) {
	flat := []TenantLoad{
		{Tenant: "a", Share: 1, PromptTokens: 100, GenTokens: 50},
		{Tenant: "b", Share: 1, PromptTokens: 200, GenTokens: 80},
	}
	heavy := []TenantLoad{
		{Tenant: "a", Share: 1, PromptTokens: 100, GenTokens: 50, PromptSigma: 1.5},
		{Tenant: "b", Share: 1, PromptTokens: 200, GenTokens: 80},
	}
	a := AppendMixShapes(nil, flat, 256, 3)
	b := AppendMixShapes(nil, heavy, 256, 3)
	varied := false
	for i := range a {
		if a[i].Tenant != b[i].Tenant {
			t.Fatal("sigma draws must not perturb tenant assignment")
		}
		if b[i].Tenant == "b" && (b[i].PromptTokens != 200 || b[i].GenTokens != 80) {
			t.Fatalf("zero-sigma tenant's lengths changed: %+v", b[i])
		}
		if b[i].Tenant == "a" && b[i].GenTokens != 50 {
			t.Fatalf("zero-sigma field changed: %+v", b[i])
		}
		if b[i].Tenant == "a" && b[i].PromptTokens != 100 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("sigma 1.5 should vary at least one prompt length over 256 draws")
	}
}

// Heavy-tailed draws clamp to [lo, HeavyTailCap*median].
func TestLengthDrawBounds(t *testing.T) {
	mix := []TenantLoad{{
		Tenant: "a", Share: 1, PromptTokens: 50, GenTokens: 20,
		PromptSigma: 3, GenSigma: 3,
		PrefixID: "a", PrefixTokens: 30,
	}}
	got := AppendMixShapes(nil, mix, 2048, 9)
	pmin, pmax := mix[0].PromptBounds()
	gmin, gmax := mix[0].GenBounds()
	if pmin != 31 || pmax != HeavyTailCap*50 || gmin != 1 || gmax != HeavyTailCap*20 {
		t.Fatalf("bounds: prompt [%d,%d] gen [%d,%d]", pmin, pmax, gmin, gmax)
	}
	hitLo, hitHi := false, false
	for _, r := range got {
		if r.PromptTokens < pmin || r.PromptTokens > pmax {
			t.Fatalf("prompt %d outside [%d, %d]", r.PromptTokens, pmin, pmax)
		}
		if r.GenTokens < gmin || r.GenTokens > gmax {
			t.Fatalf("gen %d outside [%d, %d]", r.GenTokens, gmin, gmax)
		}
		hitLo = hitLo || r.PromptTokens == pmin
		hitHi = hitHi || r.PromptTokens == pmax
	}
	// Sigma 3 is wild enough that both clamps trigger across 2048 draws.
	if !hitLo || !hitHi {
		t.Fatalf("clamps never triggered (lo %v, hi %v)", hitLo, hitHi)
	}
}

func TestGenerateDegenerateMatchesPoisson(t *testing.T) {
	mix := []TenantLoad{{Tenant: "chat", Share: 1, PromptTokens: 100, GenTokens: 50}}
	wantT := AppendPoissonArrivals(nil, 2, 128, 7)
	wantS := AppendMixShapes(nil, mix, 128, 7)
	for _, p := range []ArrivalProcess{
		{Rate: 2, Seed: 7},
		{Schedule: Schedule{{0, 60, 2}}, Seed: 7},
		{Schedule: Schedule{{0, 30, 2}, {30, 60, 2}}, Seed: 7},
		{Rate: 2, Turns: 1, Seed: 7},
	} {
		gotT, gotS := p.Generate(mix, 128, nil, nil)
		if !reflect.DeepEqual(gotT, wantT) || !reflect.DeepEqual(gotS, wantS) {
			t.Errorf("process %+v not byte-identical to the plain Poisson stream", p)
		}
	}
}

func TestGenerateScheduleDiffersFromConstant(t *testing.T) {
	mix := []TenantLoad{{Tenant: "chat", Share: 1, PromptTokens: 100, GenTokens: 50}}
	p := ArrivalProcess{Schedule: Schedule{{0, 10, 1}, {10, 20, 8}}, Seed: 7}
	gotT, _ := p.Generate(mix, 64, nil, nil)
	flatT, _ := ArrivalProcess{Rate: 1, Seed: 7}.Generate(mix, 64, nil, nil)
	if reflect.DeepEqual(gotT, flatT) {
		t.Fatal("a genuinely piecewise schedule should reshape arrivals")
	}
}

func TestGenerateSessionCohorts(t *testing.T) {
	mix := []TenantLoad{{Tenant: "chat", Share: 1, PromptTokens: 100, GenTokens: 50}}
	p := ArrivalProcess{Rate: 2, Turns: 3, Think: 5, Seed: 7}
	gotT, gotS := p.Generate(mix, 90, nil, nil)
	if len(gotT) != 90 || len(gotS) != 90 {
		t.Fatalf("cohort stream must still carry n requests, got %d/%d", len(gotT), len(gotS))
	}
	if !sort.Float64sAreSorted(gotT) {
		t.Fatal("merged cohort arrivals must be sorted")
	}
	perSession := map[int][]Request{}
	for _, r := range gotS {
		if r.Session < 1 || r.Turn < 1 || r.Turn > 3 {
			t.Fatalf("bad session markers: %+v", r)
		}
		perSession[r.Session] = append(perSession[r.Session], r)
	}
	for s, reqs := range perSession {
		sort.Slice(reqs, func(a, b int) bool { return reqs[a].Turn < reqs[b].Turn })
		for i, r := range reqs {
			k := r.Turn
			wantCtx := (k - 1) * 150
			if r.PromptTokens != wantCtx+100 || r.PrefixTokens != wantCtx || r.GenTokens != 50 {
				t.Fatalf("session %d turn %d shape %+v", s, k, r)
			}
			if k == 1 && r.PrefixID != "" {
				t.Fatalf("turn 1 must carry no prefix id: %+v", r)
			}
			if k > 1 && r.PrefixID != sessionPrefixID(s) {
				t.Fatalf("turn %d prefix id %q, want %q", k, r.PrefixID, sessionPrefixID(s))
			}
			if i > 0 && r.Turn != reqs[i-1].Turn+1 {
				t.Fatalf("session %d turns not consecutive after truncation sort: %v", s, reqs)
			}
		}
	}
	// Think time spaces a session's turns exactly.
	byTurn := map[[2]int]float64{}
	for i, r := range gotS {
		byTurn[[2]int{r.Session, r.Turn}] = gotT[i]
	}
	for key, ts := range byTurn {
		if key[1] > 1 {
			prev, ok := byTurn[[2]int{key[0], key[1] - 1}]
			if ok && math.Abs(ts-prev-5) > 1e-9 {
				t.Fatalf("session %d turn %d arrives %g after its predecessor, want 5", key[0], key[1], ts-prev)
			}
		}
	}
	// The trace the cohorts produce passes session-aware validation.
	trace := make([]TraceEvent, len(gotS))
	for i := range gotS {
		trace[i] = TraceEvent{Arrival: gotT[i], Request: gotS[i]}
	}
	if err := ValidateTrace(trace); err != nil {
		t.Fatalf("generated cohort trace must validate: %v", err)
	}
}

// Cohort truncation trims the stream to exactly n requests even when
// sessions*turns overshoots.
func TestGenerateSessionTruncation(t *testing.T) {
	mix := []TenantLoad{{Tenant: "chat", Share: 1, PromptTokens: 10, GenTokens: 5}}
	for _, n := range []int{1, 7, 29} {
		gotT, gotS := ArrivalProcess{Rate: 4, Turns: 4, Seed: 1}.Generate(mix, n, nil, nil)
		if len(gotT) != n || len(gotS) != n {
			t.Fatalf("n=%d: got %d/%d requests", n, len(gotT), len(gotS))
		}
	}
}

// With zero think time a session's turns arrive coincident; the stable
// sort must keep them in turn order.
func TestGenerateZeroThinkKeepsTurnOrder(t *testing.T) {
	mix := []TenantLoad{{Tenant: "chat", Share: 1, PromptTokens: 10, GenTokens: 5}}
	_, gotS := ArrivalProcess{Rate: 2, Turns: 3, Seed: 3}.Generate(mix, 30, nil, nil)
	last := map[int]int{}
	for _, r := range gotS {
		if r.Turn != last[r.Session]+1 {
			t.Fatalf("session %d turn %d arrived after turn %d", r.Session, r.Turn, last[r.Session])
		}
		last[r.Session] = r.Turn
	}
}
