package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestValidateMixSigma(t *testing.T) {
	base := TenantLoad{Tenant: "a", Share: 1, PromptTokens: 100, GenTokens: 50}
	ok := base
	ok.PromptSigma, ok.GenSigma = 1.2, 0.8
	if err := ValidateMix([]TenantLoad{ok}); err != nil {
		t.Fatalf("sigma mix rejected: %v", err)
	}
	for _, tc := range []struct {
		mut  func(*TenantLoad)
		want string
	}{
		{func(t *TenantLoad) { t.PromptSigma = -1 }, "prompt sigma"},
		{func(t *TenantLoad) { t.PromptSigma = math.NaN() }, "prompt sigma"},
		{func(t *TenantLoad) { t.GenSigma = math.Inf(1) }, "generation sigma"},
	} {
		bad := base
		tc.mut(&bad)
		err := ValidateMix([]TenantLoad{bad})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("want error containing %q, got %v", tc.want, err)
		}
	}
}

func TestParseMixSigmaRoundTrip(t *testing.T) {
	for _, tc := range []string{
		"chat:0.7:200:200,batch:0.3:2000:100",
		"chat:1:200~1.2:200",
		"chat:1:200~1.2:200~0.5",
		"a:1:200~1.5:200:120:sys,b:1:300:100~2:120:sys",
	} {
		mix, err := ParseMix(tc)
		if err != nil {
			t.Fatalf("parse %q: %v", tc, err)
		}
		got := FormatMix(mix)
		if got != tc {
			t.Errorf("format(parse(%q)) = %q", tc, got)
		}
		back, err := ParseMix(got)
		if err != nil || !reflect.DeepEqual(back, mix) {
			t.Errorf("round trip for %q: %v, %v", tc, back, err)
		}
	}
	for _, bad := range []string{
		"chat:1:200~x:200",
		"chat:1:200:200~",
		"chat:1:200~-1:200",
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("parse %q should fail", bad)
		}
	}
}

func TestPromptGenBounds(t *testing.T) {
	flat := TenantLoad{PromptTokens: 100, GenTokens: 50}
	if lo, hi := flat.PromptBounds(); lo != 100 || hi != 100 {
		t.Errorf("flat prompt bounds [%d, %d]", lo, hi)
	}
	if lo, hi := flat.GenBounds(); lo != 50 || hi != 50 {
		t.Errorf("flat gen bounds [%d, %d]", lo, hi)
	}
	heavy := TenantLoad{PromptTokens: 100, GenTokens: 50, PromptSigma: 1, GenSigma: 1, PrefixTokens: 40}
	if lo, hi := heavy.PromptBounds(); lo != 41 || hi != 800 {
		t.Errorf("heavy prompt bounds [%d, %d]", lo, hi)
	}
	if lo, hi := heavy.GenBounds(); lo != 1 || hi != 400 {
		t.Errorf("heavy gen bounds [%d, %d]", lo, hi)
	}
	// MixContext uses the clamp maxima.
	if c := MixContext([]TenantLoad{heavy, flat}); c != 1200 {
		t.Errorf("MixContext = %d, want 1200", c)
	}
}

func TestValidateTraceSessions(t *testing.T) {
	good := []TraceEvent{
		{Arrival: 0, Request: Request{Tenant: "a", PromptTokens: 100, GenTokens: 10, Session: 1, Turn: 1}},
		{Arrival: 1, Request: Request{Tenant: "a", PromptTokens: 210, GenTokens: 10,
			PrefixID: "~s1", PrefixTokens: 110, Session: 1, Turn: 2}},
		{Arrival: 2, Request: Request{Tenant: "a", PromptTokens: 320, GenTokens: 10,
			PrefixID: "~s1", PrefixTokens: 220, Session: 1, Turn: 3}},
	}
	if err := ValidateTrace(good); err != nil {
		t.Fatalf("growing session prefix rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		evs  []TraceEvent
		want string
	}{
		{"negative session", []TraceEvent{
			{Request: Request{Tenant: "a", PromptTokens: 10, GenTokens: 1, Session: -1}},
		}, "negative session"},
		{"turn without session", []TraceEvent{
			{Request: Request{Tenant: "a", PromptTokens: 10, GenTokens: 1, Turn: 2}},
		}, "together"},
		{"session without turn", []TraceEvent{
			{Request: Request{Tenant: "a", PromptTokens: 10, GenTokens: 1, Session: 2}},
		}, "together"},
		{"shrinking session prefix", []TraceEvent{
			{Arrival: 0, Request: Request{Tenant: "a", PromptTokens: 300, GenTokens: 1,
				PrefixID: "~s1", PrefixTokens: 200, Session: 1, Turn: 2}},
			{Arrival: 1, Request: Request{Tenant: "a", PromptTokens: 300, GenTokens: 1,
				PrefixID: "~s1", PrefixTokens: 100, Session: 1, Turn: 3}},
		}, "only grows"},
		{"non-session prefix drift", []TraceEvent{
			{Arrival: 0, Request: Request{Tenant: "a", PromptTokens: 300, GenTokens: 1,
				PrefixID: "sys", PrefixTokens: 100}},
			{Arrival: 1, Request: Request{Tenant: "a", PromptTokens: 300, GenTokens: 1,
				PrefixID: "sys", PrefixTokens: 200}},
		}, "one length"},
	} {
		err := ValidateTrace(tc.evs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestParseTraceV3(t *testing.T) {
	in := "arrival,tenant,prompt,gen,prefix_id,prefix_tokens,session,turn\n" +
		"0,chat,100,10,,0,1,1\n" +
		"1,chat,210,10,~s1,110,1,2\n" +
		"1.5,batch,50,5,,0,,\n"
	got, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceEvent{
		{Arrival: 0, Request: Request{Tenant: "chat", PromptTokens: 100, GenTokens: 10, Session: 1, Turn: 1}},
		{Arrival: 1, Request: Request{Tenant: "chat", PromptTokens: 210, GenTokens: 10,
			PrefixID: "~s1", PrefixTokens: 110, Session: 1, Turn: 2}},
		{Arrival: 1.5, Request: Request{Tenant: "batch", PromptTokens: 50, GenTokens: 5}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %+v", got)
	}
	for _, bad := range []string{
		"0,chat,100,10,,0,x,1\n",
		"0,chat,100,10,,0,1,y\n",
		"0,chat,100,10,,0,1\n", // 7 columns
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("parse %q should fail", bad)
		}
	}
}

// FormatTrace emits the narrowest schema that carries the data: v1 for
// plain traces, v2 with prefixes, v3 with sessions — and each round-trips.
func TestFormatTraceVersions(t *testing.T) {
	v1 := []TraceEvent{{Arrival: 0, Request: Request{Tenant: "a", PromptTokens: 10, GenTokens: 2}}}
	v2 := []TraceEvent{{Arrival: 0, Request: Request{Tenant: "a", PromptTokens: 10, GenTokens: 2,
		PrefixID: "sys", PrefixTokens: 4}}}
	v3 := []TraceEvent{
		{Arrival: 0, Request: Request{Tenant: "a", PromptTokens: 10, GenTokens: 2, Session: 1, Turn: 1}},
		{Arrival: 3, Request: Request{Tenant: "a", PromptTokens: 22, GenTokens: 2,
			PrefixID: "~s1", PrefixTokens: 12, Session: 1, Turn: 2}},
	}
	for _, tc := range []struct {
		trace []TraceEvent
		cols  int
	}{{v1, 4}, {v2, 6}, {v3, 8}} {
		var b strings.Builder
		if err := FormatTrace(&b, tc.trace); err != nil {
			t.Fatal(err)
		}
		header := strings.SplitN(b.String(), "\n", 2)[0]
		if n := strings.Count(header, ",") + 1; n != tc.cols {
			t.Errorf("header %q has %d columns, want %d", header, n, tc.cols)
		}
		back, err := ParseTrace(strings.NewReader(b.String()))
		if err != nil || !reflect.DeepEqual(back, tc.trace) {
			t.Errorf("round trip: %v, %v", back, err)
		}
	}
}
