package pipesim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSingleStageIsSequential(t *testing.T) {
	res, err := Simulate(Config{
		Stages: 1, Microbatches: 4, Chunks: 1, FwdTime: 2, BwdTime: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 4*(2+4) {
		t.Errorf("single-stage makespan = %g, want 24", res.Total)
	}
	if res.BubbleFraction != 0 {
		t.Errorf("single stage has no bubble, got %g", res.BubbleFraction)
	}
}

// The simulator must reproduce the closed-form 1F1B makespan
// (m + p - 1)(tf + tb) when transfers are free.
func TestMatchesClosedForm1F1B(t *testing.T) {
	cases := []Config{
		{Stages: 4, Microbatches: 8, Chunks: 1, FwdTime: 1, BwdTime: 2},
		{Stages: 8, Microbatches: 64, Chunks: 1, FwdTime: 3, BwdTime: 6},
		{Stages: 2, Microbatches: 2, Chunks: 1, FwdTime: 5, BwdTime: 10},
		{Stages: 16, Microbatches: 16, Chunks: 1, FwdTime: 1, BwdTime: 2},
	}
	for _, c := range cases {
		res, err := Simulate(c)
		if err != nil {
			t.Fatal(err)
		}
		want := IdealTotal(c)
		if math.Abs(res.Total-want)/want > 1e-9 {
			t.Errorf("p=%d m=%d: simulated %g, closed form %g",
				c.Stages, c.Microbatches, res.Total, want)
		}
	}
}

// The simulated bubble must match (p-1)/(m+p-1) for tb = 2tf.
func TestBubbleFractionMatchesFormula(t *testing.T) {
	c := Config{Stages: 8, Microbatches: 64, Chunks: 1, FwdTime: 1, BwdTime: 2}
	res, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(c.Stages-1) / float64(c.Microbatches+c.Stages-1)
	if math.Abs(res.BubbleFraction-want) > 0.01 {
		t.Errorf("bubble fraction = %g, want ≈ %g", res.BubbleFraction, want)
	}
}

func TestTransfersStretchMakespan(t *testing.T) {
	base := Config{Stages: 4, Microbatches: 8, Chunks: 1, FwdTime: 1, BwdTime: 2}
	free, _ := Simulate(base)
	base.XferTime = 0.25
	delayed, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.Total <= free.Total {
		t.Error("transfer delay should stretch the makespan")
	}
	// Without compute/transfer overlap, each steady-state 1F1B cycle
	// absorbs up to one transfer round-trip (the forward hop down plus
	// the gradient hop back), and the fill/drain path adds 2(p-1) hops.
	maxStretch := (2*float64(base.Stages-1) + 2*float64(base.Microbatches)) * base.XferTime
	if got := delayed.Total - free.Total; got > maxStretch+1e-9 {
		t.Errorf("stretch %g exceeds the non-overlapped bound %g", got, maxStretch)
	}
	// This is exactly why real systems overlap p2p with compute — and why
	// internal/train charges only the fill/drain transfers.
}

func TestInterleavingShrinksBubble(t *testing.T) {
	base := Config{Stages: 8, Microbatches: 8, Chunks: 1, FwdTime: 1, BwdTime: 2}
	plain, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	il := base
	il.Chunks = 2
	il.Interleaved = true
	// Same total work per device: halve the per-chunk times.
	il.FwdTime /= 2
	il.BwdTime /= 2
	inter, err := Simulate(il)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Total >= plain.Total {
		t.Errorf("interleaving should shorten the iteration: %g vs %g", inter.Total, plain.Total)
	}
	if inter.BubbleFraction >= plain.BubbleFraction {
		t.Errorf("interleaving should shrink the bubble: %g vs %g",
			inter.BubbleFraction, plain.BubbleFraction)
	}
}

func TestForwardOnlyPipeline(t *testing.T) {
	// Inference pipelines run forwards only: makespan (m + p - 1)·tf.
	c := Config{Stages: 4, Microbatches: 10, Chunks: 1, FwdTime: 1}
	res, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := 13.0; math.Abs(res.Total-want) > 1e-9 {
		t.Errorf("forward-only makespan = %g, want %g", res.Total, want)
	}
}

func TestSpansAreConsistent(t *testing.T) {
	c := Config{Stages: 4, Microbatches: 6, Chunks: 1, FwdTime: 1, BwdTime: 2, XferTime: 0.1}
	res, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	// Expected span count: m forwards + m backwards per stage.
	if want := 4 * 6 * 2; len(res.Spans) != want {
		t.Fatalf("span count = %d, want %d", len(res.Spans), want)
	}
	// No overlap within a stage; dependencies respected across stages.
	lastEnd := make(map[int]float64)
	fwdEnd := make(map[[2]int]float64) // (stage, micro) -> fwd end
	for _, sp := range res.Spans {
		if sp.Start < lastEnd[sp.Stage]-1e-12 {
			t.Errorf("stage %d overlaps at %g", sp.Stage, sp.Start)
		}
		if sp.End-sp.Start <= 0 {
			t.Error("non-positive span")
		}
		lastEnd[sp.Stage] = sp.End
		if !sp.Backward {
			fwdEnd[[2]int{sp.Stage, sp.Micro}] = sp.End
			// Forward on stage s needs stage s-1's forward plus transfer.
			if sp.Stage > 0 {
				dep := fwdEnd[[2]int{sp.Stage - 1, sp.Micro}]
				if dep == 0 || sp.Start < dep+c.XferTime-1e-12 {
					t.Errorf("fwd m%d on stage %d started %g before dep %g",
						sp.Micro, sp.Stage, sp.Start, dep+c.XferTime)
				}
			}
		} else if sp.Start < fwdEnd[[2]int{sp.Stage, sp.Micro}]-1e-12 {
			t.Errorf("bwd m%d on stage %d before its fwd", sp.Micro, sp.Stage)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Stages: 0, Microbatches: 1, Chunks: 1},
		{Stages: 1, Microbatches: 0, Chunks: 1},
		{Stages: 1, Microbatches: 1, Chunks: 0},
		{Stages: 1, Microbatches: 1, Chunks: 1, FwdTime: -1},
		{Stages: 2, Microbatches: 2, Chunks: 1, Interleaved: true},
	}
	for i, c := range bad {
		if _, err := Simulate(c); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

// Property: the makespan is at least the work of the busiest stage and at
// most work + full serialization of the fill/drain path.
func TestMakespanBoundsProperty(t *testing.T) {
	f := func(p8, m8 uint8) bool {
		p := int(p8)%8 + 1
		m := int(m8)%16 + 1
		c := Config{Stages: p, Microbatches: m, Chunks: 1, FwdTime: 1, BwdTime: 2}
		res, err := Simulate(c)
		if err != nil {
			return false
		}
		work := float64(m) * (c.FwdTime + c.BwdTime)
		upper := work + float64(p-1)*(c.FwdTime+c.BwdTime) + 1e-9
		return res.Total >= work-1e-9 && res.Total <= upper
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more microbatches never increase the bubble fraction.
func TestBubbleMonotoneProperty(t *testing.T) {
	f := func(m8 uint8) bool {
		m := int(m8)%32 + 1
		c := Config{Stages: 4, Microbatches: m, Chunks: 1, FwdTime: 1, BwdTime: 2}
		a, err := Simulate(c)
		if err != nil {
			return false
		}
		c.Microbatches = m + 4
		b, err := Simulate(c)
		if err != nil {
			return false
		}
		return b.BubbleFraction <= a.BubbleFraction+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
