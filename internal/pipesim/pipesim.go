// Package pipesim is a discrete-event simulator for pipeline-parallel
// training schedules (GPipe, PipeDream-Flush/1F1B, interleaved 1F1B —
// paper §3.2). Where internal/train uses the closed-form bubble model
// (p-1 slots, divided by the interleave factor), this simulator executes
// the actual schedule microbatch by microbatch, respecting data
// dependencies and inter-stage transfer delays.
//
// It serves two roles: an independent cross-check of the closed-form
// pipeline model (their agreement is asserted in the tests and in
// internal/train's integration tests), and a source of per-stage
// utilization timelines for schedule visualization.
package pipesim

import (
	"fmt"
	"math"
	"sort"
)

// Config describes one pipeline execution.
type Config struct {
	// Stages is the pipeline depth p.
	Stages int
	// Microbatches is the number of microbatches m per iteration.
	Microbatches int
	// Chunks is the interleaving factor v (model chunks per device);
	// 1 means no interleaving.
	Chunks int
	// FwdTime and BwdTime are the per-microbatch, per-chunk compute times
	// of one stage (seconds).
	FwdTime, BwdTime float64
	// XferTime is the inter-stage activation (or gradient) transfer delay.
	XferTime float64
	// Interleaved selects the interleaved-1F1B dependency pattern when
	// Chunks > 1.
	Interleaved bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Stages <= 0:
		return fmt.Errorf("pipesim: non-positive stages %d", c.Stages)
	case c.Microbatches <= 0:
		return fmt.Errorf("pipesim: non-positive microbatches %d", c.Microbatches)
	case c.Chunks < 1:
		return fmt.Errorf("pipesim: non-positive chunks %d", c.Chunks)
	case c.FwdTime < 0 || c.BwdTime < 0 || c.XferTime < 0:
		return fmt.Errorf("pipesim: negative times in %+v", c)
	case c.Interleaved && c.Chunks < 2:
		return fmt.Errorf("pipesim: interleaved schedule needs chunks >= 2")
	}
	return nil
}

// Span is one executed work item on a stage's timeline.
type Span struct {
	// Stage is the executing pipeline stage.
	Stage int
	// Micro is the microbatch index.
	Micro int
	// Chunk is the model-chunk index (always 0 without interleaving).
	Chunk int
	// Backward marks a backward-pass span.
	Backward bool
	// Start and End bound the span in seconds.
	Start, End float64
}

// Result is a simulated iteration.
type Result struct {
	// Total is the makespan in seconds.
	Total float64
	// Spans is every executed work item, sorted by start time.
	Spans []Span
	// BubbleFraction is the mean idle fraction across stages within the
	// makespan.
	BubbleFraction float64
	// PerStageBusy is each stage's busy time.
	PerStageBusy []float64
}

// task identifies one (microbatch, chunk, direction) unit on one stage.
type task struct {
	micro, chunk int
	backward     bool
}

// Simulate executes the configured schedule and returns its timeline.
//
// The simulator models each stage as a serial processor executing its
// statically-ordered task list; a task starts when both its predecessor
// on the same stage has finished and its cross-stage dependency (the same
// microbatch's previous stage, plus transfer delay) has arrived.
func Simulate(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}

	orders := buildOrders(c)

	// ready[stage][task] = earliest start permitted by cross-stage deps.
	done := make([]map[task]float64, c.Stages)
	for s := range done {
		done[s] = make(map[task]float64, len(orders[s]))
	}

	var spans []Span
	clock := make([]float64, c.Stages) // per-stage serial availability
	idx := make([]int, c.Stages)       // next task index per stage

	remaining := 0
	for _, o := range orders {
		remaining += len(o)
	}

	for remaining > 0 {
		progressed := false
		for s := 0; s < c.Stages; s++ {
			if idx[s] >= len(orders[s]) {
				continue
			}
			tk := orders[s][idx[s]]
			ready, ok := depReady(c, done, s, tk)
			if !ok {
				continue
			}
			start := math.Max(clock[s], ready)
			dur := c.FwdTime
			if tk.backward {
				dur = c.BwdTime
			}
			end := start + dur
			clock[s] = end
			done[s][tk] = end
			spans = append(spans, Span{
				Stage: s, Micro: tk.micro, Chunk: tk.chunk,
				Backward: tk.backward, Start: start, End: end,
			})
			idx[s]++
			remaining--
			progressed = true
		}
		if !progressed {
			return Result{}, fmt.Errorf("pipesim: schedule deadlock (config %+v)", c)
		}
	}

	sort.Slice(spans, func(i, j int) bool {
		//lint:floateq exact compare guarding a strict-< tiebreak: equal bit patterns must fall through to the stage index
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Stage < spans[j].Stage
	})

	res := Result{Spans: spans, PerStageBusy: make([]float64, c.Stages)}
	for _, sp := range spans {
		if sp.End > res.Total {
			res.Total = sp.End
		}
		res.PerStageBusy[sp.Stage] += sp.End - sp.Start
	}
	if res.Total > 0 {
		var idle float64
		for _, busy := range res.PerStageBusy {
			idle += res.Total - busy
		}
		res.BubbleFraction = idle / (res.Total * float64(c.Stages))
	}
	return res, nil
}

// buildOrders returns each stage's static task execution order.
func buildOrders(c Config) [][]task {
	orders := make([][]task, c.Stages)
	switch {
	case c.Interleaved && c.Chunks > 1:
		for s := 0; s < c.Stages; s++ {
			orders[s] = interleavedOrder(c, s)
		}
	case c.BwdTime == 0:
		// Forward-only pipelines (inference): plain in-order forwards.
		for s := 0; s < c.Stages; s++ {
			for m := 0; m < c.Microbatches; m++ {
				orders[s] = append(orders[s], task{micro: m})
			}
		}
	default:
		for s := 0; s < c.Stages; s++ {
			orders[s] = oneFOneBOrder(c, s)
		}
	}
	return orders
}

// oneFOneBOrder builds the PipeDream-Flush order for one stage: a warmup
// of (p-1-s) forwards, a steady 1F1B phase, and a cooldown of backwards.
// GPipe (all forwards then all backwards) is the degenerate case where the
// warmup spans every microbatch; both yield the same makespan, so the
// simulator always uses the 1F1B order and the memory difference is
// handled by internal/memfoot.
func oneFOneBOrder(c Config, stage int) []task {
	warmup := c.Stages - 1 - stage
	if warmup > c.Microbatches {
		warmup = c.Microbatches
	}
	var order []task
	f, b := 0, 0
	for ; f < warmup; f++ {
		order = append(order, task{micro: f})
	}
	for f < c.Microbatches || b < c.Microbatches {
		if f < c.Microbatches {
			order = append(order, task{micro: f})
			f++
		}
		if b < c.Microbatches {
			order = append(order, task{micro: b, backward: true})
			b++
		}
	}
	return order
}

// interleavedOrder builds the interleaved-1F1B order: warmup forwards
// sweep the chunks in order, then steady alternation.
func interleavedOrder(c Config, stage int) []task {
	var fwd []task
	for ch := 0; ch < c.Chunks; ch++ {
		for m := 0; m < c.Microbatches; m++ {
			fwd = append(fwd, task{micro: m, chunk: ch})
		}
	}
	var bwd []task
	for ch := c.Chunks - 1; ch >= 0; ch-- {
		for m := 0; m < c.Microbatches; m++ {
			bwd = append(bwd, task{micro: m, chunk: ch, backward: true})
		}
	}
	// Warmup shrinks with the chunk count: (p-1-s) forwards per chunk
	// boundary, then strict 1F1B alternation.
	warmup := (c.Stages - 1 - stage) + (c.Chunks-1)*c.Stages
	if warmup > len(fwd) {
		warmup = len(fwd)
	}
	var order []task
	order = append(order, fwd[:warmup]...)
	fi, bi := warmup, 0
	for fi < len(fwd) || bi < len(bwd) {
		if fi < len(fwd) {
			order = append(order, fwd[fi])
			fi++
		}
		if bi < len(bwd) {
			order = append(order, bwd[bi])
			bi++
		}
	}
	return order
}

// depReady returns the earliest start allowed by the task's cross-stage
// dependency and whether that dependency has completed.
func depReady(c Config, done []map[task]float64, stage int, tk task) (float64, bool) {
	dep, onStage, exists := dependency(c, stage, tk)
	if !exists {
		return 0, true
	}
	t, ok := done[onStage][dep]
	if !ok {
		return 0, false
	}
	return t + c.XferTime, true
}

// dependency returns the producing task and its stage for the given task.
//
// Forward chunk ch on stage s consumes chunk ch on stage s-1 (or chunk
// ch-1 on the last stage when s == 0, in the interleaved layout where
// chunks wrap around the ring of stages). Backward dependencies mirror
// forward ones.
func dependency(c Config, stage int, tk task) (task, int, bool) {
	if !tk.backward {
		if stage > 0 {
			return task{micro: tk.micro, chunk: tk.chunk}, stage - 1, true
		}
		if tk.chunk > 0 {
			return task{micro: tk.micro, chunk: tk.chunk - 1}, c.Stages - 1, true
		}
		return task{}, 0, false
	}
	// Backward: the same microbatch's forward on this stage must be done —
	// that is ordering within the stage — and the backward of the
	// downstream consumer must have produced the incoming gradient.
	if stage < c.Stages-1 {
		return task{micro: tk.micro, chunk: tk.chunk, backward: true}, stage + 1, true
	}
	if tk.chunk < c.Chunks-1 {
		return task{micro: tk.micro, chunk: tk.chunk + 1, backward: true}, 0, true
	}
	// The last stage's backward of the last chunk starts right after its
	// own forward (ordering handled by the stage serialization).
	return task{micro: tk.micro, chunk: tk.chunk}, stage, true
}

// IdealTotal returns the closed-form 1F1B/GPipe makespan the simulator
// should agree with when transfers are free:
// (m + p - 1)·(tf + tb) for the non-interleaved schedules.
func IdealTotal(c Config) float64 {
	slots := float64(c.Microbatches) + float64(c.Stages-1)/float64(max(1, c.Chunks))
	return slots * (c.FwdTime + c.BwdTime)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
