// Package arch is the architecture abstraction layer of the Optimus model
// (paper §3.1): a high-level description of a device, node, and system in
// terms of the coarse performance drivers — compute throughput per
// precision, memory-hierarchy capacities and bandwidths, and network links.
//
// The layer can be populated two ways, exactly as in the paper: directly
// from vendor specifications (the presets in presets.go), or derived from
// the µarch engine (internal/uarch) for design-space exploration. Both
// produce the same Device type consumed by the roofline and communication
// models, so the performance prediction engine never sees technology
// details.
package arch

import (
	"fmt"

	"optimus/internal/tech"
)

// MemLevel is one level of the on-device memory hierarchy, ordered from the
// level closest to the compute units (shared memory / L1) outward to DRAM.
type MemLevel struct {
	// Name identifies the level ("L1", "L2", "HBM").
	Name string
	// Capacity is the aggregate usable capacity in bytes.
	Capacity float64
	// BW is the aggregate peak bandwidth in B/s.
	BW float64
	// Util is the default achievable fraction of peak bandwidth for
	// streaming kernels at this level (the paper's bandwidth utilization
	// factor, §4.1).
	Util float64
}

// EffBW returns the achievable bandwidth Util×BW.
func (m MemLevel) EffBW() float64 { return m.BW * m.Util }

// Device describes one accelerator at the abstraction-layer granularity.
type Device struct {
	Name string

	// Compute is peak dense tensor throughput per precision, FLOP/s.
	// Missing precisions are unsupported by the device.
	Compute map[tech.Precision]float64

	// VectorCompute is the non-tensor (CUDA-core-class) throughput used by
	// normalization and element-wise kernels, FLOP/s at FP32.
	VectorCompute float64

	// Mem is the memory hierarchy ordered innermost (L1) to outermost
	// (DRAM). The last level is always the off-chip DRAM.
	Mem []MemLevel

	// DRAM tags the off-chip memory generation for reporting.
	DRAM tech.DRAMTech

	// GEMMEff is the achievable fraction of peak tensor throughput for
	// large, square ("fat") GEMMs — the compute analogue of the bandwidth
	// utilization factor. Shape-dependent derating on top of this is
	// applied by the roofline model.
	GEMMEff float64

	// KernelLaunch is the fixed software overhead per kernel launch in
	// seconds; it dominates tiny inference-phase kernels (paper §4.1:
	// "for smaller sizes, the software overhead has a non-negligible
	// impact").
	KernelLaunch float64
}

// DRAMLevel returns the outermost (off-chip) memory level.
func (d Device) DRAMLevel() MemLevel {
	if len(d.Mem) == 0 {
		return MemLevel{}
	}
	return d.Mem[len(d.Mem)-1]
}

// DRAMCapacity returns the device memory capacity in bytes.
func (d Device) DRAMCapacity() float64 { return d.DRAMLevel().Capacity }

// PeakCompute returns the dense peak throughput at precision p, or an error
// if the device lacks hardware support for that format.
func (d Device) PeakCompute(p tech.Precision) (float64, error) {
	if f, ok := d.Compute[p]; ok && f > 0 {
		return f, nil
	}
	return 0, fmt.Errorf("arch: device %s does not support %v", d.Name, p)
}

// BestCompute returns the highest-throughput precision no finer than p that
// the device supports, falling back toward FP32. Training with a FP8
// transformer engine on an A100, for example, resolves to BF16.
func (d Device) BestCompute(p tech.Precision) (tech.Precision, float64) {
	// Preference order from the requested precision down to FP32, in a
	// fixed-size array so the hot costing path never allocates.
	var order [5]tech.Precision
	n := 0
	push := func(q tech.Precision) { order[n] = q; n++ }
	push(p)
	switch p {
	case tech.FP4:
		push(tech.FP8)
		push(tech.FP16)
		push(tech.BF16)
		push(tech.FP32)
	case tech.FP8:
		push(tech.FP16)
		push(tech.BF16)
		push(tech.FP32)
	case tech.FP16:
		push(tech.BF16)
		push(tech.FP32)
	case tech.BF16:
		push(tech.FP16)
		push(tech.FP32)
	default:
		push(tech.FP32)
	}
	for _, q := range order[:n] {
		if f, ok := d.Compute[q]; ok && f > 0 {
			return q, f
		}
	}
	return tech.FP32, 0
}

// Validate checks structural invariants: a non-empty hierarchy with
// positive capacities and bandwidths, plus at least one supported
// precision. No ordering constraints are imposed between levels: a
// futuristic DRAM stack can outpace an older last-level cache (the
// L2-bound regime of §6.2), and a V100's aggregate L1 exceeds its L2
// capacity. The roofline model handles any hierarchy shape.
func (d Device) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("arch: device has no name")
	}
	if len(d.Mem) == 0 {
		return fmt.Errorf("arch: device %s has no memory hierarchy", d.Name)
	}
	for _, m := range d.Mem {
		if m.Capacity <= 0 || m.BW <= 0 {
			return fmt.Errorf("arch: device %s level %s has non-positive capacity or bandwidth", d.Name, m.Name)
		}
		if m.Util <= 0 || m.Util > 1 {
			return fmt.Errorf("arch: device %s level %s utilization %g outside (0,1]", d.Name, m.Name, m.Util)
		}
	}
	if len(d.Compute) == 0 {
		return fmt.Errorf("arch: device %s supports no precision", d.Name)
	}
	if d.GEMMEff <= 0 || d.GEMMEff > 1 {
		return fmt.Errorf("arch: device %s GEMM efficiency %g outside (0,1]", d.Name, d.GEMMEff)
	}
	return nil
}

// Link is a point-to-point or switched interconnect as seen by one device.
type Link struct {
	// Tech tags the interconnect generation for reporting.
	Tech tech.NetworkTech
	// BW is per-device unidirectional bandwidth in B/s.
	BW float64
	// Latency is the per-hop latency in seconds (the paper's l).
	Latency float64
	// Util is the achievable fraction of BW for large transfers; the
	// message-size-dependent derating is applied by internal/comm.
	Util float64
}

// EffBW returns the achievable large-message bandwidth Util×BW.
func (l Link) EffBW() float64 { return l.BW * l.Util }

// LinkFromTech builds a Link from a technology-table entry, dividing
// node-level (InfiniBand) bandwidth across devicesPerNode devices.
func LinkFromTech(t tech.NetworkTech, devicesPerNode int, util float64) Link {
	spec := t.Spec()
	bw := spec.BW
	if spec.PerNode && devicesPerNode > 0 {
		bw /= float64(devicesPerNode)
	}
	return Link{Tech: t, BW: bw, Latency: spec.Latency, Util: util}
}

// System is the full machine: identical devices grouped into nodes with an
// intra-node fabric, and nodes joined by an inter-node fabric.
type System struct {
	Device         Device
	DevicesPerNode int
	NumNodes       int
	// Intra is the per-device intra-node link (NVLink class).
	Intra Link
	// Inter is the per-device share of the inter-node link (IB class).
	Inter Link
}

// NumDevices returns the total accelerator count.
func (s *System) NumDevices() int { return s.DevicesPerNode * s.NumNodes }

// Validate checks the system invariants.
func (s *System) Validate() error {
	if err := s.Device.Validate(); err != nil {
		return err
	}
	if s.DevicesPerNode <= 0 || s.NumNodes <= 0 {
		return fmt.Errorf("arch: system %s has non-positive shape %dx%d", s.Device.Name, s.NumNodes, s.DevicesPerNode)
	}
	if s.DevicesPerNode > 1 && s.Intra.BW <= 0 {
		return fmt.Errorf("arch: system %s has multiple devices per node but no intra-node link", s.Device.Name)
	}
	if s.NumNodes > 1 && s.Inter.BW <= 0 {
		return fmt.Errorf("arch: system %s has multiple nodes but no inter-node link", s.Device.Name)
	}
	return nil
}

// LinkBetween returns the link connecting a group of n cooperating devices:
// the intra-node fabric if they fit inside one node, otherwise the
// inter-node fabric (TP/SP stay inside a node in all the paper's
// configurations; DP and PP cross nodes).
func (s *System) LinkBetween(n int) Link {
	if n <= 1 {
		return Link{}
	}
	if n <= s.DevicesPerNode {
		return s.Intra
	}
	return s.Inter
}

// String renders a one-line summary of the system shape.
func (s *System) String() string {
	return fmt.Sprintf("%s x%d (%d nodes x %d GPUs, intra %s, inter %s)",
		s.Device.Name, s.NumDevices(), s.NumNodes, s.DevicesPerNode,
		s.Intra.Tech, s.Inter.Tech)
}
