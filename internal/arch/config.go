package arch

import (
	"encoding/json"
	"fmt"
	"io"

	"optimus/internal/tech"
)

// External system descriptions (paper §3.1: the abstraction layer "can
// also directly receive a high-level system description from external
// inputs, which avoids tedious microarchitecture parameter calibration").
// The JSON shape mirrors the performance drivers exactly, so a vendor
// datasheet transcribes line by line.

// deviceConfig is the JSON wire format for a Device.
type deviceConfig struct {
	Name          string             `json:"name"`
	Compute       map[string]float64 `json:"compute"` // precision name → FLOP/s
	VectorCompute float64            `json:"vectorCompute"`
	Mem           []struct {
		Name     string  `json:"name"`
		Capacity float64 `json:"capacity"`
		BW       float64 `json:"bw"`
		Util     float64 `json:"util"`
	} `json:"mem"`
	DRAM         string  `json:"dram"`
	GEMMEff      float64 `json:"gemmEff"`
	KernelLaunch float64 `json:"kernelLaunch"`
}

// systemConfig is the JSON wire format for a System.
type systemConfig struct {
	Device         deviceConfig `json:"device"`
	DevicesPerNode int          `json:"devicesPerNode"`
	NumNodes       int          `json:"numNodes"`
	Intra          linkConfig   `json:"intra"`
	Inter          linkConfig   `json:"inter"`
}

type linkConfig struct {
	// Tech optionally names a technology-table entry; explicit fields
	// override its values.
	Tech    string  `json:"tech,omitempty"`
	BW      float64 `json:"bw,omitempty"`
	Latency float64 `json:"latency,omitempty"`
	Util    float64 `json:"util,omitempty"`
}

// decodeDevice converts the wire format with defaults and validation.
func decodeDevice(c deviceConfig) (Device, error) {
	d := Device{
		Name:          c.Name,
		Compute:       make(map[tech.Precision]float64, len(c.Compute)),
		VectorCompute: c.VectorCompute,
		GEMMEff:       c.GEMMEff,
		KernelLaunch:  c.KernelLaunch,
	}
	for name, flops := range c.Compute {
		p, err := tech.ParsePrecision(name)
		if err != nil {
			return Device{}, fmt.Errorf("arch: device %s: %w", c.Name, err)
		}
		d.Compute[p] = flops
	}
	for _, m := range c.Mem {
		util := m.Util
		if util == 0 {
			util = 0.80
		}
		d.Mem = append(d.Mem, MemLevel{Name: m.Name, Capacity: m.Capacity, BW: m.BW, Util: util})
	}
	if c.DRAM != "" {
		t, err := tech.ParseDRAM(c.DRAM)
		if err != nil {
			return Device{}, err
		}
		d.DRAM = t
	}
	if d.GEMMEff == 0 {
		d.GEMMEff = 0.70
	}
	if d.KernelLaunch == 0 {
		d.KernelLaunch = 3e-6
	}
	if err := d.Validate(); err != nil {
		return Device{}, err
	}
	return d, nil
}

// decodeLink resolves a link config, starting from the named technology
// entry when present.
func decodeLink(c linkConfig, devicesPerNode int, defaultUtil float64) (Link, error) {
	var l Link
	if c.Tech != "" {
		t, err := tech.ParseNetwork(c.Tech)
		if err != nil {
			return Link{}, err
		}
		l = LinkFromTech(t, devicesPerNode, defaultUtil)
		l.Latency = collLatency(t)
	}
	if c.BW > 0 {
		l.BW = c.BW
	}
	if c.Latency > 0 {
		l.Latency = c.Latency
	}
	if c.Util > 0 {
		l.Util = c.Util
	}
	if l.Util == 0 {
		l.Util = defaultUtil
	}
	return l, nil
}

// ReadDevice parses a JSON device description.
func ReadDevice(r io.Reader) (Device, error) {
	var c deviceConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Device{}, fmt.Errorf("arch: device config: %w", err)
	}
	return decodeDevice(c)
}

// ReadSystem parses a JSON system description.
func ReadSystem(r io.Reader) (*System, error) {
	var c systemConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("arch: system config: %w", err)
	}
	dev, err := decodeDevice(c.Device)
	if err != nil {
		return nil, err
	}
	intra, err := decodeLink(c.Intra, 0, 0.80)
	if err != nil {
		return nil, err
	}
	inter, err := decodeLink(c.Inter, c.DevicesPerNode, 0.85)
	if err != nil {
		return nil, err
	}
	s := &System{
		Device:         dev,
		DevicesPerNode: c.DevicesPerNode,
		NumNodes:       c.NumNodes,
		Intra:          intra,
		Inter:          inter,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteDevice serializes a device back to the JSON wire format, so preset
// devices can be exported, edited and reloaded.
func WriteDevice(w io.Writer, d Device) error {
	c := deviceConfig{
		Name:          d.Name,
		Compute:       make(map[string]float64, len(d.Compute)),
		VectorCompute: d.VectorCompute,
		DRAM:          d.DRAM.String(),
		GEMMEff:       d.GEMMEff,
		KernelLaunch:  d.KernelLaunch,
	}
	for p, f := range d.Compute {
		c.Compute[p.String()] = f
	}
	for _, m := range d.Mem {
		c.Mem = append(c.Mem, struct {
			Name     string  `json:"name"`
			Capacity float64 `json:"capacity"`
			BW       float64 `json:"bw"`
			Util     float64 `json:"util"`
		}{m.Name, m.Capacity, m.BW, m.Util})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
