package arch

import (
	"fmt"
	"sort"

	"optimus/internal/tech"
)

// Preset device builders. Peak numbers are the public vendor datasheet
// values (dense tensor throughput, not the 2:4-sparsity marketing figures);
// the efficiency knobs (GEMMEff, per-level Util, KernelLaunch, link Latency)
// are the calibration constants of the model, fitted once against the
// published measurements the paper validates with (§4) and then held fixed
// across every case study.

// A100 returns an NVIDIA A100-SXM4-80GB device.
func A100() Device {
	return Device{
		Name: "A100-80GB",
		Compute: map[tech.Precision]float64{
			tech.FP32: 19.5e12,
			tech.TF32: 156e12,
			tech.BF16: 312e12,
			tech.FP16: 312e12,
			tech.INT8: 624e12,
		},
		VectorCompute: 19.5e12,
		Mem: []MemLevel{
			{Name: "L1", Capacity: 20.7e6, BW: 19.4e12, Util: 0.90},
			// 4 TB/s is the measured A100 L2 read bandwidth; its 3.4 TB/s
			// effective rate is where §6.2's DRAM scaling saturates
			// (HBM3e-class stacks already exceed it).
			{Name: "L2", Capacity: 40e6, BW: 4.0e12, Util: 0.85},
			{Name: "HBM", Capacity: 80e9, BW: 1.935e12, Util: 0.80},
		},
		DRAM:         tech.HBM2E,
		GEMMEff:      0.75,
		KernelLaunch: 2.8e-6,
	}
}

// A100_40GB returns the 40 GB HBM2 variant.
func A100_40GB() Device {
	d := A100()
	d.Name = "A100-40GB"
	d.Mem[2] = MemLevel{Name: "HBM", Capacity: 40e9, BW: 1.555e12, Util: 0.80}
	d.DRAM = tech.HBM2
	return d
}

// H100 returns an NVIDIA H100-SXM5-80GB device.
func H100() Device {
	return Device{
		Name: "H100-SXM",
		Compute: map[tech.Precision]float64{
			tech.FP32: 66.9e12,
			tech.TF32: 494.7e12,
			tech.BF16: 989.4e12,
			tech.FP16: 989.4e12,
			tech.FP8:  1978.9e12,
			tech.INT8: 1978.9e12,
		},
		VectorCompute: 66.9e12,
		Mem: []MemLevel{
			{Name: "L1", Capacity: 33.8e6, BW: 33e12, Util: 0.90},
			{Name: "L2", Capacity: 50e6, BW: 6.5e12, Util: 0.85},
			{Name: "HBM", Capacity: 80e9, BW: 3.35e12, Util: 0.80},
		},
		DRAM:         tech.HBM3Fast,
		GEMMEff:      0.72,
		KernelLaunch: 2.2e-6,
	}
}

// H200 returns an NVIDIA H200 device: Hopper compute with HBM3e.
func H200() Device {
	d := H100()
	d.Name = "H200"
	d.Mem[2] = MemLevel{Name: "HBM", Capacity: 141e9, BW: 4.8e12, Util: 0.80}
	d.DRAM = tech.HBM3E
	return d
}

// B200 returns an NVIDIA B200 device with FP4 support.
func B200() Device {
	return Device{
		Name: "B200",
		Compute: map[tech.Precision]float64{
			tech.FP32: 80e12,
			tech.TF32: 1.1e15,
			tech.BF16: 2.25e15,
			tech.FP16: 2.25e15,
			tech.FP8:  4.5e15,
			tech.FP4:  9.0e15,
			tech.INT8: 4.5e15,
		},
		VectorCompute: 80e12,
		Mem: []MemLevel{
			{Name: "L1", Capacity: 48e6, BW: 60e12, Util: 0.90},
			{Name: "L2", Capacity: 126e6, BW: 14e12, Util: 0.85},
			{Name: "HBM", Capacity: 192e9, BW: 8.0e12, Util: 0.80},
		},
		DRAM:         tech.HBM3E,
		GEMMEff:      0.70,
		KernelLaunch: 2.0e-6,
	}
}

// B100 returns an NVIDIA B100 device (B200 at a lower power envelope).
func B100() Device {
	d := B200()
	d.Name = "B100"
	for p, f := range d.Compute {
		d.Compute[p] = f * 1.75 / 2.25
	}
	d.VectorCompute *= 1.75 / 2.25
	return d
}

// V100 returns an NVIDIA V100-SXM2-32GB device (DeepFlow's validation
// platform, kept for lineage and regression tests).
func V100() Device {
	return Device{
		Name: "V100",
		Compute: map[tech.Precision]float64{
			tech.FP32: 15.7e12,
			tech.FP16: 125e12,
		},
		VectorCompute: 15.7e12,
		Mem: []MemLevel{
			{Name: "L1", Capacity: 10e6, BW: 14e12, Util: 0.90},
			{Name: "L2", Capacity: 6e6, BW: 2.5e12, Util: 0.85},
			{Name: "HBM", Capacity: 32e9, BW: 0.9e12, Util: 0.80},
		},
		DRAM:         tech.HBM2,
		GEMMEff:      0.66,
		KernelLaunch: 4.0e-6,
	}
}

// P4 returns an NVIDIA P4 inference card (DeepFlow's second validation
// platform).
func P4() Device {
	return Device{
		Name: "P4",
		Compute: map[tech.Precision]float64{
			tech.FP32: 5.5e12,
			tech.FP16: 5.5e12,
			tech.INT8: 22e12,
		},
		VectorCompute: 5.5e12,
		Mem: []MemLevel{
			{Name: "L1", Capacity: 2.5e6, BW: 4e12, Util: 0.90},
			{Name: "L2", Capacity: 2e6, BW: 1e12, Util: 0.85},
			{Name: "DRAM", Capacity: 8e9, BW: 192e9, Util: 0.80},
		},
		DRAM:         tech.GDDR6,
		GEMMEff:      0.60,
		KernelLaunch: 5.0e-6,
	}
}

// TPUv4 returns a Google TPU v4 device (the paper notes the framework was
// extended to accommodate TPUs; modeled from public figures).
func TPUv4() Device {
	return Device{
		Name: "TPUv4",
		Compute: map[tech.Precision]float64{
			tech.BF16: 275e12,
			tech.FP16: 275e12,
			tech.INT8: 275e12,
			tech.FP32: 34e12,
		},
		VectorCompute: 34e12,
		Mem: []MemLevel{
			{Name: "VMEM", Capacity: 128e6, BW: 11e12, Util: 0.90},
			{Name: "CMEM", Capacity: 128e6, BW: 5e12, Util: 0.85},
			{Name: "HBM", Capacity: 32e9, BW: 1.2e12, Util: 0.80},
		},
		DRAM:         tech.HBM2,
		GEMMEff:      0.68,
		KernelLaunch: 3.0e-6,
	}
}

// Effective collective latencies per fabric generation, calibrated so that
// the inference validation (Table 2) and the 8-GPU comm/memory ratio of
// ~1.6x (§6.2) are reproduced. These fold NCCL software launch cost into
// the per-hop latency l of Eqs. (3)-(4), which is why they exceed the raw
// wire latencies in internal/tech.
const (
	nvlink3CollLatency = 7.5e-6
	nvlink4CollLatency = 6.7e-6
	nvlink5CollLatency = 6.0e-6
	ibCollLatency      = 9.0e-6
)

// collLatency returns the calibrated collective latency for a fabric.
func collLatency(t tech.NetworkTech) float64 {
	switch t {
	case tech.NVLink3:
		return nvlink3CollLatency
	case tech.NVLink4, tech.NVSwitchH:
		return nvlink4CollLatency
	case tech.NVLink5, tech.NVSwitchB:
		return nvlink5CollLatency
	default:
		return ibCollLatency
	}
}

// IntraLink builds the per-GPU intra-node link for a fabric generation with
// the calibrated collective latency.
func IntraLink(t tech.NetworkTech) Link {
	l := LinkFromTech(t, 0, 0.80)
	l.Latency = collLatency(t)
	return l
}

// InterLink builds the per-GPU share of an inter-node fabric for nodes of
// devicesPerNode GPUs. NVLink-Switch systems expose per-GPU bandwidth
// directly; InfiniBand bandwidth is a node aggregate split across GPUs.
func InterLink(t tech.NetworkTech, devicesPerNode int) Link {
	l := LinkFromTech(t, devicesPerNode, 0.85)
	l.Latency = collLatency(t)
	return l
}

// SystemOf assembles a System of n devices in nodes of devicesPerNode with
// the given fabrics. n must be divisible by devicesPerNode unless it is
// smaller than one node, in which case a single partial node is built.
func SystemOf(d Device, n, devicesPerNode int, intra, inter tech.NetworkTech) (*System, error) {
	if n <= 0 || devicesPerNode <= 0 {
		return nil, fmt.Errorf("arch: non-positive system shape n=%d per-node=%d", n, devicesPerNode)
	}
	if n < devicesPerNode {
		devicesPerNode = n
	}
	if n%devicesPerNode != 0 {
		return nil, fmt.Errorf("arch: %d devices not divisible into nodes of %d", n, devicesPerNode)
	}
	s := &System{
		Device:         d,
		DevicesPerNode: devicesPerNode,
		NumNodes:       n / devicesPerNode,
		Intra:          IntraLink(intra),
		Inter:          InterLink(inter, devicesPerNode),
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// DGXA100 builds an A100 cluster in DGX nodes of 8 with NVLink3 inside and
// HDR InfiniBand between nodes (the paper's Table 1 validation platform).
func DGXA100(n int) (*System, error) {
	return SystemOf(A100(), n, 8, tech.NVLink3, tech.IBHDR)
}

// DGXH100 builds an H100 cluster in nodes of 8 with NVLink4 and NDR IB.
func DGXH100(n int) (*System, error) {
	return SystemOf(H100(), n, 8, tech.NVLink4, tech.IBNDR)
}

// DeviceByName returns a preset device by its conventional name.
func DeviceByName(name string) (Device, error) {
	builders := map[string]func() Device{
		"a100": A100, "a100-80gb": A100, "a100-40gb": A100_40GB,
		"h100": H100, "h100-sxm": H100, "h200": H200,
		"b100": B100, "b200": B200,
		"v100": V100, "p4": P4, "tpuv4": TPUv4,
	}
	if b, ok := builders[lower(name)]; ok {
		return b(), nil
	}
	return Device{}, fmt.Errorf("arch: unknown device preset %q (known: %s)", name, knownPresets())
}

func knownPresets() string {
	names := []string{"a100", "a100-40gb", "h100", "h200", "b100", "b200", "v100", "p4", "tpuv4"}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
