package arch

import (
	"testing"
	"testing/quick"

	"optimus/internal/tech"
)

func TestPresetsValidate(t *testing.T) {
	for _, d := range []Device{A100(), A100_40GB(), H100(), H200(), B100(), B200(), V100(), P4(), TPUv4()} {
		if err := d.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", d.Name, err)
		}
	}
}

func TestPaperHeadlineNumbers(t *testing.T) {
	a := A100()
	if f, _ := a.PeakCompute(tech.FP16); f != 312e12 {
		t.Errorf("A100 FP16 = %g, want 312e12", f)
	}
	if bw := a.DRAMLevel().BW; bw != 1.935e12 {
		t.Errorf("A100 HBM BW = %g, want 1.935e12 (paper: 1.9 TB/s class)", bw)
	}
	h := H100()
	if f, _ := h.PeakCompute(tech.FP16); f != 989.4e12 {
		t.Errorf("H100 FP16 = %g, want 989.4e12 (paper §6.2)", f)
	}
	if bw := h.DRAMLevel().BW; bw != 3.35e12 {
		t.Errorf("H100 HBM BW = %g, want 3.35e12 (paper §4.3)", bw)
	}
	if cap := H200().DRAMCapacity(); cap != 141e9 {
		t.Errorf("H200 capacity = %g, want 141e9", cap)
	}
	b := B200()
	if f, _ := b.PeakCompute(tech.FP4); f != 9.0e15 {
		t.Errorf("B200 FP4 = %g, want 9e15", f)
	}
}

func TestPeakComputeUnsupported(t *testing.T) {
	a := A100()
	if _, err := a.PeakCompute(tech.FP8); err == nil {
		t.Error("A100 should not support FP8")
	}
	if _, err := a.PeakCompute(tech.FP4); err == nil {
		t.Error("A100 should not support FP4")
	}
}

func TestBestComputeFallback(t *testing.T) {
	a := A100()
	// Requesting FP8 on an A100 must fall back to FP16/BF16 at 312 TFLOPS,
	// mirroring mixed-precision training without a transformer engine.
	p, f := a.BestCompute(tech.FP8)
	if f != 312e12 || (p != tech.FP16 && p != tech.BF16) {
		t.Errorf("A100 BestCompute(FP8) = %v %g, want fp16-class 312e12", p, f)
	}
	b := B200()
	p, f = b.BestCompute(tech.FP4)
	if p != tech.FP4 || f != 9.0e15 {
		t.Errorf("B200 BestCompute(FP4) = %v %g", p, f)
	}
	h := H100()
	p, f = h.BestCompute(tech.FP4)
	if p != tech.FP8 || f != 1978.9e12 {
		t.Errorf("H100 BestCompute(FP4) = %v %g, want fp8", p, f)
	}
}

func TestHierarchyOrdering(t *testing.T) {
	for _, d := range []Device{A100(), H100(), B200()} {
		for i := 1; i < len(d.Mem); i++ {
			if d.Mem[i].BW > d.Mem[i-1].BW {
				t.Errorf("%s: level %s faster than inner level", d.Name, d.Mem[i].Name)
			}
			if d.Mem[i].Capacity < d.Mem[i-1].Capacity {
				t.Errorf("%s: level %s smaller than inner level", d.Name, d.Mem[i].Name)
			}
		}
	}
}

func TestValidateRejectsBadDevices(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Device)
	}{
		{"no name", func(d *Device) { d.Name = "" }},
		{"no memory", func(d *Device) { d.Mem = nil }},
		{"zero capacity", func(d *Device) { d.Mem[0].Capacity = 0 }},
		{"bad util", func(d *Device) { d.Mem[0].Util = 1.5 }},
		{"no compute", func(d *Device) { d.Compute = nil }},
		{"bad gemm eff", func(d *Device) { d.GEMMEff = 0 }},
	}
	for _, c := range cases {
		d := A100()
		c.mut(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("Validate should reject device with %s", c.name)
		}
	}
}

func TestLinkFromTechPerNodeSplit(t *testing.T) {
	// HDR IB is 200 GB/s per node; a DGX has 8 GPUs → 25 GB/s per GPU.
	l := LinkFromTech(tech.IBHDR, 8, 0.85)
	if l.BW != 25e9 {
		t.Errorf("per-GPU HDR share = %g, want 25e9", l.BW)
	}
	// NVLink is already per-GPU.
	l = LinkFromTech(tech.NVLink4, 8, 0.8)
	if l.BW != 450e9 {
		t.Errorf("NVLink4 per-GPU = %g, want 450e9", l.BW)
	}
}

func TestSystemOf(t *testing.T) {
	s, err := DGXA100(64)
	if err != nil {
		t.Fatalf("DGXA100(64): %v", err)
	}
	if s.NumDevices() != 64 || s.NumNodes != 8 {
		t.Errorf("system shape = %d devices, %d nodes", s.NumDevices(), s.NumNodes)
	}
	if s.Intra.Tech != tech.NVLink3 || s.Inter.Tech != tech.IBHDR {
		t.Errorf("fabrics = %v, %v", s.Intra.Tech, s.Inter.Tech)
	}
	// A 4-GPU request is a single partial node.
	s, err = DGXA100(4)
	if err != nil {
		t.Fatalf("DGXA100(4): %v", err)
	}
	if s.NumNodes != 1 || s.DevicesPerNode != 4 {
		t.Errorf("partial node shape = %dx%d", s.NumNodes, s.DevicesPerNode)
	}
}

func TestSystemOfRejectsBadShapes(t *testing.T) {
	if _, err := SystemOf(A100(), 0, 8, tech.NVLink3, tech.IBHDR); err == nil {
		t.Error("zero devices should be rejected")
	}
	if _, err := SystemOf(A100(), 12, 8, tech.NVLink3, tech.IBHDR); err == nil {
		t.Error("non-divisible device count should be rejected")
	}
}

func TestLinkBetween(t *testing.T) {
	s, _ := DGXA100(64)
	if l := s.LinkBetween(8); l.Tech != tech.NVLink3 {
		t.Errorf("8-way group should use intra-node link, got %v", l.Tech)
	}
	if l := s.LinkBetween(16); l.Tech != tech.IBHDR {
		t.Errorf("16-way group should use inter-node link, got %v", l.Tech)
	}
	if l := s.LinkBetween(1); l.BW != 0 {
		t.Error("single-device group needs no link")
	}
}

func TestDeviceByName(t *testing.T) {
	d, err := DeviceByName("H100")
	if err != nil || d.Name != "H100-SXM" {
		t.Errorf("DeviceByName(H100) = %v, %v", d.Name, err)
	}
	if _, err := DeviceByName("mi300"); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestCollectiveLatencyOrdering(t *testing.T) {
	// Newer fabrics must not be slower; the NV3→NV4 step sizes the ~12%
	// communication gain of §6.2.
	if !(nvlink4CollLatency < nvlink3CollLatency) {
		t.Error("NVLink4 collective latency should improve on NVLink3")
	}
	if !(nvlink5CollLatency < nvlink4CollLatency) {
		t.Error("NVLink5 collective latency should improve on NVLink4")
	}
}

func TestSystemString(t *testing.T) {
	s, _ := DGXA100(16)
	if s.String() == "" {
		t.Error("String should render")
	}
}

// Property: LinkBetween never returns a link with more bandwidth than the
// intra-node fabric (inter-node is always the bottleneck fabric).
func TestLinkBetweenMonotoneProperty(t *testing.T) {
	s, _ := DGXA100(64)
	f := func(nSeed uint8) bool {
		n := int(nSeed)%64 + 1
		l := s.LinkBetween(n)
		return l.BW <= s.Intra.BW
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
