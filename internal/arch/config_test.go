package arch

import (
	"bytes"
	"strings"
	"testing"

	"optimus/internal/tech"
)

const mi300xJSON = `{
  "name": "MI300X-like",
  "compute": {"fp16": 1.3e15, "fp8": 2.6e15, "fp32": 163e12},
  "vectorCompute": 163e12,
  "mem": [
    {"name": "LDS", "capacity": 64e6, "bw": 45e12, "util": 0.9},
    {"name": "Infinity", "capacity": 256e6, "bw": 17e12, "util": 0.85},
    {"name": "HBM", "capacity": 192e9, "bw": 5.3e12, "util": 0.8}
  ],
  "dram": "hbm3",
  "gemmEff": 0.65,
  "kernelLaunch": 3e-6
}`

func TestReadDevice(t *testing.T) {
	d, err := ReadDevice(strings.NewReader(mi300xJSON))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "MI300X-like" {
		t.Errorf("name = %q", d.Name)
	}
	if f, _ := d.PeakCompute(tech.FP8); f != 2.6e15 {
		t.Errorf("fp8 = %g", f)
	}
	if d.DRAMLevel().BW != 5.3e12 || d.DRAMCapacity() != 192e9 {
		t.Errorf("DRAM level wrong: %+v", d.DRAMLevel())
	}
	if d.DRAM != tech.HBM3 {
		t.Errorf("dram tag = %v", d.DRAM)
	}
}

func TestReadDeviceDefaults(t *testing.T) {
	minimal := `{"name":"min","compute":{"fp16":1e12},
		"mem":[{"name":"HBM","capacity":1e9,"bw":1e11}]}`
	d, err := ReadDevice(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	if d.GEMMEff != 0.70 || d.KernelLaunch != 3e-6 {
		t.Errorf("defaults not applied: eff=%g launch=%g", d.GEMMEff, d.KernelLaunch)
	}
	if d.Mem[0].Util != 0.80 {
		t.Errorf("default util = %g", d.Mem[0].Util)
	}
}

func TestReadDeviceRejectsBadInput(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"name":"x","compute":{"fp128":1},"mem":[{"name":"m","capacity":1,"bw":1}]}`, // bad precision
		`{"name":"x","compute":{"fp16":1e12},"mem":[],"gemmEff":0.5}`,                 // no memory
		`{"name":"x","compute":{"fp16":1e12},"mem":[{"name":"m","capacity":1,"bw":1}],"dram":"ddr2"}`,
		`{"name":"x","unknown":1}`, // unknown field
	}
	for i, c := range cases {
		if _, err := ReadDevice(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestReadSystem(t *testing.T) {
	cfg := `{
	  "device": ` + mi300xJSON + `,
	  "devicesPerNode": 8,
	  "numNodes": 4,
	  "intra": {"bw": 400e9, "latency": 7e-6, "util": 0.8},
	  "inter": {"tech": "ndr"}
	}`
	s, err := ReadSystem(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDevices() != 32 {
		t.Errorf("devices = %d", s.NumDevices())
	}
	if s.Intra.BW != 400e9 || s.Intra.Latency != 7e-6 {
		t.Errorf("intra link = %+v", s.Intra)
	}
	// Named tech: NDR 400 GB/s per node split across 8 GPUs.
	if s.Inter.BW != 50e9 {
		t.Errorf("inter per-GPU BW = %g, want 50e9", s.Inter.BW)
	}
}

func TestReadSystemRejectsBadLinks(t *testing.T) {
	cfg := `{
	  "device": ` + mi300xJSON + `,
	  "devicesPerNode": 8, "numNodes": 4,
	  "intra": {"tech": "token-ring"},
	  "inter": {"tech": "ndr"}
	}`
	if _, err := ReadSystem(strings.NewReader(cfg)); err == nil {
		t.Error("unknown link tech should fail")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDevice(&buf, H100()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDevice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := H100()
	if back.Name != orig.Name || back.GEMMEff != orig.GEMMEff {
		t.Errorf("round trip changed scalars: %+v", back)
	}
	for p, f := range orig.Compute {
		if back.Compute[p] != f {
			t.Errorf("round trip changed %v compute", p)
		}
	}
	if len(back.Mem) != len(orig.Mem) || back.DRAMLevel().BW != orig.DRAMLevel().BW {
		t.Error("round trip changed memory hierarchy")
	}
}
