package repro

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric cell, stripping a trailing '%'.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q", s)
	}
	return v
}

// find returns the first row whose leading cells equal the given prefix.
func find(t *testing.T, tb Table, prefix ...string) []string {
	t.Helper()
	for _, row := range tb.Rows {
		ok := len(row) >= len(prefix)
		for i := range prefix {
			if ok && row[i] != prefix[i] {
				ok = false
			}
		}
		if ok {
			return row
		}
	}
	t.Fatalf("row %v not found in %s", prefix, tb.ID)
	return nil
}

func TestAllGeneratorsProduceTables(t *testing.T) {
	for _, id := range IDs() {
		tb, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 || len(tb.Header) == 0 {
			t.Errorf("%s: empty table", id)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: row width %d != header width %d", id, len(row), len(tb.Header))
			}
		}
		if !strings.Contains(tb.String(), strings.ToUpper(id)) {
			t.Errorf("%s: rendering lacks the id banner", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestTable1ErrorsWithinBand(t *testing.T) {
	tb, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Fatalf("Table 1 has %d rows, want 11", len(tb.Rows))
	}
	errCol := len(tb.Header) - 1
	for _, row := range tb.Rows {
		if e := cell(t, row[errCol]); e > 12 {
			t.Errorf("%s: error %.1f%% above the 12%% gate", row[0], e)
		}
	}
}

func TestTable2ErrorsWithinBand(t *testing.T) {
	tb, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Fatalf("Table 2 has %d rows, want 11", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if e := cell(t, row[5]); e > 20 {
			t.Errorf("%s A100: error %.1f%% above the 20%% gate", row[0], e)
		}
		if e := cell(t, row[8]); e > 20 {
			t.Errorf("%s H100: error %.1f%% above the 20%% gate", row[0], e)
		}
	}
}

func TestTable4BoundFlips(t *testing.T) {
	tb, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	// Large GEMMs: compute-bound on A100, memory-bound on H100.
	for _, fn := range []string{"merged-head X.Wkqv = K,Q,V", "Z.W = O", "O1.Wmlp2 = O2"} {
		row := find(t, tb, fn)
		if row[2] != "compute" {
			t.Errorf("%s: A100 bound = %s, want compute", fn, row[2])
		}
		if row[5] != "memory" {
			t.Errorf("%s: H100 bound = %s, want memory", fn, row[5])
		}
	}
	// Single-head kernels: µs scale, filed under memory.
	row := find(t, tb, "single-head Q.K^T = R")
	if v := cell(t, row[1]); v > 10 {
		t.Errorf("single-head A100 time %.1fµs, want < 10µs", v)
	}
	if !strings.HasPrefix(row[2], "memory") {
		t.Errorf("single-head A100 bound = %s, want memory*", row[2])
	}
}

func TestFig4RecomputeOrderingAndFit(t *testing.T) {
	tb, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("Fig 4 has %d rows, want 9", len(tb.Rows))
	}
	for _, m := range []string{"GPT-175B", "GPT-530B", "GPT-1008B"} {
		none := cell(t, find(t, tb, m, "none")[4])
		sel := cell(t, find(t, tb, m, "selective")[4])
		full := cell(t, find(t, tb, m, "full")[4])
		if !(none > sel && sel > full) {
			t.Errorf("%s: activation ordering violated: %g %g %g", m, none, sel, full)
		}
		if tot := cell(t, find(t, tb, m, "none")[5]); tot < 80 {
			t.Errorf("%s no-recompute total %.0f GB should exceed 80", m, tot)
		}
	}
	// GPT-175B with selective recomputation fits the A100 (§5.1).
	if fits := find(t, tb, "GPT-175B", "selective")[6]; fits != "yes" {
		t.Error("GPT-175B selective should fit 80 GB")
	}
}

func TestFig5MonotoneSpeedups(t *testing.T) {
	tb, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("Fig 5 has %d rows, want 7", len(tb.Rows))
	}
	// The §5.2 dominance relations: each upgrade the text calls out must
	// help. (H200-NVS-L and B200-NDR are adjacent, nearly equal bars in
	// the paper's figure, so no ordering is asserted between them.)
	norm := func(name string) float64 { return cell(t, find(t, tb, name)[4]) }
	if norm("A100-HDR") < 10 {
		t.Errorf("A100-HDR normalized %.1f, want ≥ 10x slower than B200-NVS-L", norm("A100-HDR"))
	}
	relations := [][2]string{
		{"A100-HDR", "H100-NDR"},   // ~4x from Hopper + NDR
		{"H100-NDR", "H100-NVS"},   // NVLink switch system
		{"H100-NVS", "H200-NVS-L"}, // HBM3e + larger batch
		{"H100-NDR", "B200-NDR"},   // Blackwell FP4
		{"B200-NDR", "B200-NVS"},
		{"B200-NVS", "B200-NVS-L"},
	}
	for _, r := range relations {
		if !(norm(r[0]) > norm(r[1])) {
			t.Errorf("%s (%.2f) should be slower than %s (%.2f)", r[0], norm(r[0]), r[1], norm(r[1]))
		}
	}
	if last := norm("B200-NVS-L"); last != 1.0 {
		t.Errorf("B200-NVS-L normalized = %g, want 1.0", last)
	}
	// Breakdown sums approximately to the normalized total.
	for _, row := range tb.Rows {
		sum := cell(t, row[5]) + cell(t, row[6]) + cell(t, row[7])
		if diff := sum - cell(t, row[4]); diff > 0.35 || diff < -0.35 {
			t.Errorf("%s: breakdown %.1f does not sum to total %.1f", row[0], sum, cell(t, row[4]))
		}
	}
}

func TestFig6ScalingShape(t *testing.T) {
	tb, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig 6 has %d series, want 6", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		// Execution time decreases monotonically with node scaling...
		for i := 2; i < len(row); i++ {
			if cell(t, row[i]) > cell(t, row[i-1])*1.02 {
				t.Errorf("%s: time increased from %s to %s", row[0], tb.Header[i-1], tb.Header[i])
			}
		}
		// ...but saturates: the last step gains less than the first.
		first := cell(t, row[1]) - cell(t, row[2])
		last := cell(t, row[len(row)-2]) - cell(t, row[len(row)-1])
		if last > first {
			t.Errorf("%s: no saturation (first gain %.2f, last gain %.2f)", row[0], first, last)
		}
	}
	// HBM2 → HBM2e helps at every node; HBM3 → HBM4 is marginal (§5.3).
	hbm2 := tb.Rows[0]
	hbm2e := tb.Rows[1]
	hbm3 := tb.Rows[2]
	hbm4 := tb.Rows[3]
	for i := 1; i < len(hbm2); i++ {
		if cell(t, hbm2e[i]) >= cell(t, hbm2[i]) {
			t.Errorf("HBM2e should beat HBM2 at %s", tb.Header[i])
		}
		if gain := cell(t, hbm3[i]) - cell(t, hbm4[i]); gain > 0.05 {
			t.Errorf("HBM3→HBM4 gain %.2fs at %s should be marginal (network-bound)", gain, tb.Header[i])
		}
	}
	// Faster networks shift the HBM4 curve down at the final node.
	n1 := len(hbm4) - 1
	if !(cell(t, tb.Rows[5][n1]) < cell(t, tb.Rows[3][n1])) {
		t.Error("400 GB/s network should beat 100 GB/s at N1")
	}
}

func TestFig7MemoryShareGrows(t *testing.T) {
	tb, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	share := func(dram, node string) float64 {
		return cell(t, find(t, tb, dram, node)[5])
	}
	// Memory-bound share grows from N12 to N1 for every DRAM generation.
	for _, d := range []string{"HBM2", "HBM3", "HBM4"} {
		if !(share(d, "N1") > share(d, "N12")) {
			t.Errorf("%s: memory share should grow with node scaling", d)
		}
	}
	// Faster HBM defers the memory-bound flip.
	if !(share("HBM3", "N1") < share("HBM2", "N1")) {
		t.Error("HBM3 should be less memory-bound than HBM2 at N1")
	}
	// Total per-layer GEMM time shrinks with scaling.
	if !(cell(t, find(t, tb, "HBM2", "N1")[4]) < cell(t, find(t, tb, "HBM2", "N12")[4])) {
		t.Error("layer GEMM time should shrink with node scaling")
	}
}

func TestFig8Fractions(t *testing.T) {
	tb, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	frac := func(dev, batch string) float64 {
		return cell(t, find(t, tb, dev, batch)[4])
	}
	// Paper: A100 67%→96%, H100 0%→85%.
	if f := frac("A100-80GB", "1"); f < 50 || f > 90 {
		t.Errorf("A100 B=1 compute share %.0f%%, want 50-90%% (paper 67%%)", f)
	}
	if f := frac("A100-80GB", "16"); f < 90 {
		t.Errorf("A100 B=16 compute share %.0f%%, want ≥ 90%% (paper 96%%)", f)
	}
	if f := frac("H100-SXM", "1"); f != 0 {
		t.Errorf("H100 B=1 compute share %.0f%%, want 0%%", f)
	}
	if f := frac("H100-SXM", "16"); f < 70 {
		t.Errorf("H100 B=16 compute share %.0f%%, want ≥ 70%% (paper 85%%)", f)
	}
	// Inset: weights ≈ 26 GB, KV cache grows 16x with batch.
	w := cell(t, find(t, tb, "A100-80GB", "1")[5])
	if w < 24 || w > 28 {
		t.Errorf("weights %.1f GB, want ≈ 26", w)
	}
	kv1 := cell(t, find(t, tb, "A100-80GB", "1")[6])
	kv16 := cell(t, find(t, tb, "A100-80GB", "16")[6])
	if r := kv16 / kv1; r < 15 || r > 17 {
		t.Errorf("KV cache batch scaling = %.1fx, want 16x", r)
	}
}

func TestFig9SaturationAndComm(t *testing.T) {
	tb, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	mem := func(label, gpus string) float64 {
		return cell(t, find(t, tb, label, gpus)[3])
	}
	// Memory time falls monotonically with DRAM bandwidth...
	order := []string{"GDR6-NV3", "HBM2-NV3", "HBM2e-NV3", "HBM3-NV3", "HBM3e-NV3"}
	for i := 1; i < len(order); i++ {
		if !(mem(order[i], "2") < mem(order[i-1], "2")) {
			t.Errorf("memory time should fall from %s to %s", order[i-1], order[i])
		}
	}
	// ...but saturates beyond HBM3e (L2-bound, §6.2): HBMX gains < 10%.
	gain := (mem("HBM3e-NV3", "2") - mem("HBMX-NV3", "2")) / mem("HBM3e-NV3", "2")
	if gain > 0.10 {
		t.Errorf("HBM3e→HBMX memory gain %.0f%% should be <10%% (L2 bound)", 100*gain)
	}
	// NV3→NV4 trims communication by ~12% (§6.2), band 5-25%.
	comm := func(label, gpus string) float64 {
		return cell(t, find(t, tb, label, gpus)[4])
	}
	commGain := (comm("HBMX-NV3", "8") - comm("HBMX-NV4", "8")) / comm("HBMX-NV3", "8")
	if commGain < 0.05 || commGain > 0.25 {
		t.Errorf("NV3→NV4 comm gain %.0f%%, want ≈ 12%%", 100*commGain)
	}
	// At 8 GPUs communication exceeds memory time on fast-memory systems.
	if cell(t, find(t, tb, "HBM3e-NV3", "8")[5]) < 1.0 {
		t.Error("8-GPU comm/memory ratio should exceed 1 at HBM3e")
	}
}

func TestFig3Notes(t *testing.T) {
	tb, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 30 {
		t.Errorf("Fig 3 sweep too small: %d kernels", len(tb.Rows))
	}
	joined := strings.Join(tb.Notes, " ")
	if !strings.Contains(joined, "MAPE") || !strings.Contains(joined, "oracle") {
		t.Error("Fig 3 notes must report MAPE and the oracle substitution")
	}
}
