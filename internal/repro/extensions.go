package repro

import (
	"fmt"

	"optimus/internal/arch"
	"optimus/internal/energy"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/train"
	"optimus/internal/valdata"
)

// Extension experiments: studies enabled by the validated model but not
// printed in the paper. They are registered alongside the paper's tables
// and figures ("ext-flash", "ext-tco") and carry the same test treatment.

// ExtFlash sweeps sequence length for standard vs FlashAttention training
// on the GPT-175B validation platform — quantifying the §1.1 discussion
// ("execution time and memory complexity of attention grows quadratically
// with sequence length"; FlashAttention trades FLOPs for DRAM traffic).
func ExtFlash() (Table, error) {
	t := Table{
		ID:    "ext-flash",
		Title: "Standard vs FlashAttention training time, GPT-175B on 64 A100s (equal token budget)",
		Header: []string{"Seq", "Batch", "std (s)", "flash (s)", "speedup",
			"std act (GB)", "flash-class act (GB)"},
	}
	base, err := TrainSpecFor(valdata.Table1()[1]) // the GPT-175B row
	if err != nil {
		return Table{}, err
	}
	base.Recompute = memfoot.Selective
	for _, p := range []struct{ seq, batch int }{
		{2048, 64}, {4096, 32}, {8192, 16}, {16384, 8},
	} {
		std := base
		std.Seq = p.seq
		std.GlobalBatch = p.batch
		sres, err := train.Predict(std)
		if err != nil {
			return Table{}, err
		}
		fl := std
		fl.Flash = true
		fres, err := train.Predict(fl)
		if err != nil {
			return Table{}, err
		}
		// Memory: flash never materializes the attention quadratic — the
		// Eq. (2) selective discount models exactly those tensors.
		noRec := std
		noRec.Recompute = memfoot.NoRecompute
		nres, err := train.Predict(noRec)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.seq), fmt.Sprint(p.batch),
			f1(sres.Total), f1(fres.Total),
			fmt.Sprintf("%.2fx", sres.Total/fres.Total),
			gb(nres.MemoryPerDevice.Activations),
			gb(sres.MemoryPerDevice.Activations),
		})
	}
	t.Notes = append(t.Notes,
		"equal token budget per row (seq × batch constant); the quadratic attention term grows with seq",
		"flash-class activations are the Eq. 2 selective figures: the score/dropout tensors are never stored")
	return t, nil
}

// ExtTCO prices GPT-175B training per generation — the perf/TCO analysis
// of the paper's introduction, regenerated with the §7 energy model.
func ExtTCO() (Table, error) {
	t := Table{
		ID:    "ext-tco",
		Title: "Cost to train GPT-175B for 300B tokens across GPU generations (8192 GPUs, Fig. 5 configs)",
		Header: []string{"Platform", "days", "energy (MWh)", "compute ($M)",
			"energy ($M)", "total ($M)", "$/PFLOP"},
	}
	// Per-generation device-hour pricing (public cloud classes).
	hourly := map[string]float64{
		"A100-HDR": 2.0, "H100-NDR": 4.0, "H100-NVS": 4.0,
		"H200-NVS-L": 4.5, "B200-NDR": 6.0, "B200-NVS": 6.0, "B200-NVS-L": 6.0,
	}
	for _, p := range Fig5Platforms() {
		res, err := Fig5Predict(p)
		if err != nil {
			return Table{}, err
		}
		spec, err := fig5Spec(p)
		if err != nil {
			return Table{}, err
		}
		prices := energy.DefaultPrices()
		prices.GPUHourUSD = hourly[p.name]
		run, err := energy.PriceTrainingRun(spec, res, 300e9, prices)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			p.name, f1(run.Days), f1(run.EnergyMWh),
			f2(run.Cost.ComputeUSD / 1e6), f2(run.Cost.EnergyUSD / 1e6),
			f2(run.Cost.Total() / 1e6),
			fmt.Sprintf("%.4f", run.USDPerPFLOP),
		})
	}
	t.Notes = append(t.Notes,
		"the intro's '$10M to train GPT-3' anchor: A100-class pricing lands in that decade at realistic MFU",
		"newer generations cost more per hour but less per useful PFLOP — the perf/TCO trend the paper motivates")
	return t, nil
}

// fig5Spec rebuilds the train.Spec behind a Fig. 5 platform for the TCO
// extension.
func fig5Spec(p fig5Platform) (train.Spec, error) {
	sys, err := arch.SystemOf(p.dev, 8192, 8, p.intra, p.inter)
	if err != nil {
		return train.Spec{}, err
	}
	return train.Spec{
		Model:  model.GPT175B(),
		System: sys,
		Map: parallel.Mapping{
			DP: 128, TP: 8, PP: 8, SP: true,
			Microbatch: 1, Schedule: parallel.OneFOneB,
		},
		GlobalBatch: p.batch,
		Seq:         2048,
		Precision:   p.prec,
		Recompute:   memfoot.Selective,
	}, nil
}
