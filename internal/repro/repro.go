// Package repro regenerates every table and figure of the paper's
// evaluation from the analytical model: Table 1 (training validation),
// Table 2 (inference validation), Table 4 (per-GEMM bounds), and Figs. 3-9
// (GEMV calibration, memory dissection, GPU-generation scaling, technology
// -node scaling, bound-type evolution, inference bound analysis, and DRAM
// technology scaling). Each generator returns a typed Table that renders
// as aligned ASCII; the CLI (`optimus reproduce`) and the benchmark
// harness (bench_test.go) both drive these generators.
package repro

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one regenerated experiment.
type Table struct {
	// ID is the experiment key ("table1", "fig6", ...).
	ID string
	// Title describes the experiment as in the paper.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the cells, already formatted.
	Rows [][]string
	// Notes carry summary statistics and caveats printed under the table.
	Notes []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Generator produces one experiment.
type Generator func() (Table, error)

// All returns the experiment registry keyed by ID.
func All() map[string]Generator {
	return map[string]Generator{
		"table1": Table1,
		"table2": Table2,
		"table4": Table4,
		"fig3":   Fig3,
		"fig4":   Fig4,
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"fig8":   Fig8,
		"fig9":   Fig9,
		// Extension studies beyond the paper's evaluation (DESIGN.md).
		"ext-flash":   ExtFlash,
		"ext-tco":     ExtTCO,
		"ext-scaling": ExtScaling,
	}
}

// IDs returns the experiment keys in stable order.
func IDs() []string {
	m := All()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run generates one experiment by ID.
func Run(id string) (Table, error) {
	g, ok := All()[id]
	if !ok {
		return Table{}, fmt.Errorf("repro: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return g()
}

// formatting helpers shared by the generators.

func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
func ms(x float64) string  { return fmt.Sprintf("%.0f", x*1e3) }
func us(x float64) string  { return fmt.Sprintf("%.1f", x*1e6) }
func gb(x float64) string  { return fmt.Sprintf("%.1f", x/1e9) }
