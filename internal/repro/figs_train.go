package repro

import (
	"fmt"

	"optimus/internal/arch"
	"optimus/internal/dse"
	"optimus/internal/gemv"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/tech"
	"optimus/internal/train"
	"optimus/internal/uarch"
	"optimus/internal/units"
)

// Fig3 regenerates the GEMV validation: predicted vs (synthetically)
// measured kernel times under the clustered and constant DRAM-utilization
// calibrations.
func Fig3() (Table, error) {
	o := gemv.NewOracle(42)
	samples := gemv.Profile(o, gemv.LLMKernels())
	cal, err := gemv.Calibrate(samples, 6)
	if err != nil {
		return Table{}, err
	}
	preds := gemv.Evaluate(o, cal, samples)
	st := gemv.Summarize(preds)

	t := Table{
		ID:    "fig3",
		Title: "GEMV correlation on A100: measured vs predicted (clustered / constant DRAM utilization)",
		Header: []string{"Kernel (M=1)", "bytes (MB)", "measured (µs)",
			"clustered (µs)", "err", "constant (µs)", "err"},
	}
	for _, p := range preds {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("N=%d K=%d", p.Kernel.N, p.Kernel.K),
			f1(p.Kernel.CompulsoryBytes() / 1e6),
			us(p.Measured),
			us(p.Clustered), pct(units.RelErr(p.Clustered, p.Measured)),
			us(p.Constant), pct(units.RelErr(p.Constant, p.Measured)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("clustered MAPE %s (paper: 5.4%%), constant MAPE %s, log-log correlation %.4f",
			pct(st.MAPEClustered), pct(st.MAPEConstant), st.Corr),
		"measurements come from the synthetic A100 oracle documented in DESIGN.md (no physical GPU available)")
	return t, nil
}

// fig4Case is one Fig. 4 model configuration (from Table 1).
type fig4Case struct {
	model string
	pp    int
	batch int
}

// Fig4 regenerates the training memory dissection for the three GPT models
// under the three recomputation regimes.
func Fig4() (Table, error) {
	cases := []fig4Case{
		{"GPT-175B", 8, 64},
		{"GPT-530B", 35, 280},
		{"GPT-1008B", 64, 512},
	}
	regimes := []memfoot.Recompute{memfoot.NoRecompute, memfoot.Selective, memfoot.Full}

	t := Table{
		ID:    "fig4",
		Title: "Memory breakdown per GPU (mixed precision, Table 1 configs) vs the A100 80 GB line",
		Header: []string{"Model", "Recompute", "Optimizer+grad (GB)", "Parameter (GB)",
			"Activation (GB)", "Total (GB)", "fits 80 GB"},
	}
	for _, c := range cases {
		cfg, err := model.ByName(c.model)
		if err != nil {
			return Table{}, err
		}
		for _, r := range regimes {
			spec := memfoot.TrainSpec{
				Model: cfg,
				Map: parallel.Mapping{
					DP: 1, TP: 8, PP: c.pp, Microbatch: 1,
					Schedule: parallel.OneFOneB,
				},
				Seq:         2048,
				GlobalBatch: c.batch,
				Recompute:   r,
			}
			bd, err := memfoot.Train(spec)
			if err != nil {
				return Table{}, err
			}
			fits := "no"
			if memfoot.FitsDevice(bd, 80e9) {
				fits = "yes"
			}
			t.Rows = append(t.Rows, []string{
				c.model, r.String(),
				gb(bd.Gradients + bd.Optimizer), gb(bd.Parameters),
				gb(bd.Activations), gb(bd.Total()), fits,
			})
		}
	}
	t.Notes = append(t.Notes,
		"optimizer state bucket = fp16 gradients (2 B/param) + fp32 master/momentum/variance (12 B/param)",
		"no-recompute configurations generally exceed the 80 GB device, as in §5.1")
	return t, nil
}

// fig5Platform is one bar of the GPU-generation scaling study.
type fig5Platform struct {
	name  string
	dev   arch.Device
	intra tech.NetworkTech
	inter tech.NetworkTech
	prec  tech.Precision
	batch int
}

// Fig5Platforms returns the seven configurations of §5.2 in paper order.
func Fig5Platforms() []fig5Platform {
	return []fig5Platform{
		{"A100-HDR", arch.A100(), tech.NVLink3, tech.IBHDR, tech.BF16, 1024},
		{"H100-NDR", arch.H100(), tech.NVLink4, tech.IBNDR, tech.FP8, 1024},
		{"H100-NVS", arch.H100(), tech.NVLink4, tech.NVSwitchH, tech.FP8, 1024},
		{"H200-NVS-L", arch.H200(), tech.NVLink4, tech.NVSwitchH, tech.FP8, 4096},
		{"B200-NDR", arch.B200(), tech.NVLink5, tech.IBNDR, tech.FP4, 1024},
		{"B200-NVS", arch.B200(), tech.NVLink5, tech.NVSwitchB, tech.FP4, 1024},
		{"B200-NVS-L", arch.B200(), tech.NVLink5, tech.NVSwitchB, tech.FP4, 4096},
	}
}

// Fig5Predict runs the GPT-175B projection for one platform.
func Fig5Predict(p fig5Platform) (train.Result, error) {
	sys, err := arch.SystemOf(p.dev, 8192, 8, p.intra, p.inter)
	if err != nil {
		return train.Result{}, err
	}
	return train.Predict(train.Spec{
		Model:  model.GPT175B(),
		System: sys,
		Map: parallel.Mapping{
			DP: 128, TP: 8, PP: 8, SP: true,
			Microbatch: 1, Schedule: parallel.OneFOneB,
		},
		GlobalBatch: p.batch,
		Seq:         2048,
		Precision:   p.prec,
		Recompute:   memfoot.Selective,
	})
}

// Fig5 regenerates the GPU-generation training scaling (GPT-175B, 8192
// GPUs, 128-8-8-8) with the compute/communication/other decomposition,
// normalized per sample against B200-NVS-L.
func Fig5() (Table, error) {
	plats := Fig5Platforms()
	type row struct {
		p       fig5Platform
		res     train.Result
		perSamp float64
	}
	rows := make([]row, len(plats))
	for i, p := range plats {
		res, err := Fig5Predict(p)
		if err != nil {
			return Table{}, err
		}
		rows[i] = row{p: p, res: res, perSamp: res.Total / float64(p.batch)}
	}
	ref := rows[len(rows)-1].perSamp // B200-NVS-L

	t := Table{
		ID:    "fig5",
		Title: "Training scaling across GPU generations, GPT-175B on 8192 GPUs (normalized vs B200-NVS-L)",
		Header: []string{"Platform", "Precision", "Batch", "t/batch (s)",
			"normalized", "compute", "comm", "other"},
	}
	for _, r := range rows {
		norm := r.perSamp / ref
		t.Rows = append(t.Rows, []string{
			r.p.name, r.p.prec.String(), fmt.Sprint(r.p.batch),
			f1(r.res.Total), f1(norm),
			f1(norm * r.res.Compute / r.res.Total),
			f1(norm * r.res.Communication / r.res.Total),
			f1(norm * r.res.Other / r.res.Total),
		})
	}
	speedup := rows[0].perSamp / ref
	t.Notes = append(t.Notes,
		fmt.Sprintf("A100-HDR to B200-NVS-L speedup: %.1fx (paper: ~35x following NVIDIA's trend)", speedup),
		"precision column is the tensor-engine format: FP8 transformer engine on Hopper, FP4 on Blackwell (§5.2)")
	return t, nil
}

// fig6Series is one curve of the technology-node scaling study.
type fig6Series struct {
	dram tech.DRAMTech
	net  tech.NetworkTech
}

// Fig6Series returns the six curves of §5.3 in legend order.
func Fig6Series() []fig6Series {
	return []fig6Series{
		{tech.HBM2, tech.IBNDRx8},
		{tech.HBM2E, tech.IBNDRx8},
		{tech.HBM3, tech.IBNDRx8},
		{tech.HBM4, tech.IBNDRx8},
		{tech.HBM4, tech.IBXDRx8},
		{tech.HBM4, tech.IBGDRx8},
	}
}

// fig6Objective predicts GPT-7B iteration time (Table 3: 1024 GPUs,
// 64-4-4-4, batch 512) on a system derived from the design.
func fig6Objective(d uarch.Design) (float64, error) {
	sys, err := uarch.SystemFrom(d, 1024, 4)
	if err != nil {
		return 0, err
	}
	res, err := train.Predict(train.Spec{
		Model:  model.GPT7B(),
		System: sys,
		Map: parallel.Mapping{
			DP: 64, TP: 4, PP: 4, SP: true,
			Microbatch: 1, Schedule: parallel.OneFOneB,
		},
		GlobalBatch: 512,
		Seq:         2048,
		Precision:   tech.BF16,
	})
	if err != nil {
		return 0, err
	}
	return res.Total, nil
}

// dseOptions are reduced search settings for the sweep (42 DSE runs).
var dseOptions = dse.Options{MaxIters: 12, Starts: 2}

// Fig6Optimize runs the §3.6 DSE at one node for one memory/network choice
// and returns the optimized iteration time.
func Fig6Optimize(node tech.Node, s fig6Series) (float64, error) {
	base := uarch.Design{
		Node:    node,
		DRAM:    s.dram,
		Network: s.net,
		Budget:  uarch.A100ClassBudget(),
		Alloc:   uarch.DefaultAllocation(),
	}
	res, err := dse.Optimize(base, fig6Objective, dseOptions)
	if err != nil {
		return 0, err
	}
	return res.Cost, nil
}

// Fig6 regenerates the technology-node scaling study: execution time per
// iteration for GPT-7B across N12..N1 for the six memory/network series,
// with the architecture DSE-optimized at every point.
func Fig6() (Table, error) {
	series := Fig6Series()
	t := Table{
		ID:    "fig6",
		Title: "Technology-node scaling, GPT-7B on 1024 GPUs (64-4-4-4), DSE-optimized per point (s/iter)",
	}
	t.Header = []string{"Series"}
	for _, n := range tech.Nodes {
		t.Header = append(t.Header, n.String())
	}
	for _, s := range series {
		row := []string{fmt.Sprintf("%s-%s", s.dram, s.net)}
		for _, n := range tech.Nodes {
			cost, err := Fig6Optimize(n, s)
			if err != nil {
				return Table{}, err
			}
			row = append(row, f2(cost))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"times saturate beyond N5 as layers turn memory-bound (§5.3); HBM2→HBM2e helps, HBM3/4 is network-limited at 100 GB/s",
		"raising the inter-node network from 100 to 400 GB/s shifts the whole HBM4 curve down")
	return t, nil
}

// Fig7 regenerates the per-layer GEMM bound-type breakdown across nodes
// for HBM2/HBM3/HBM4 (forward+backward, ms per transformer layer).
func Fig7() (Table, error) {
	t := Table{
		ID:    "fig7",
		Title: "GEMM time per transformer layer by bound type across nodes (GPT-7B study)",
		Header: []string{"DRAM", "Node", "compute-bound (ms)", "memory-bound (ms)",
			"total (ms)", "memory share"},
	}
	for _, dram := range []tech.DRAMTech{tech.HBM2, tech.HBM3, tech.HBM4} {
		for _, n := range tech.Nodes {
			base := uarch.Design{
				Node:    n,
				DRAM:    dram,
				Network: tech.IBNDRx8,
				Budget:  uarch.A100ClassBudget(),
				Alloc:   uarch.DefaultAllocation(),
			}
			res, err := dse.Optimize(base, fig6Objective, dseOptions)
			if err != nil {
				return Table{}, err
			}
			sys, err := uarch.SystemFrom(res.Design, 1024, 4)
			if err != nil {
				return Table{}, err
			}
			cb, mb, err := train.LayerGEMMBoundSplit(train.Spec{
				Model:  model.GPT7B(),
				System: sys,
				Map: parallel.Mapping{
					DP: 64, TP: 4, PP: 4, SP: true,
					Microbatch: 1, Schedule: parallel.OneFOneB,
				},
				GlobalBatch: 512,
				Seq:         2048,
				Precision:   tech.BF16,
			})
			if err != nil {
				return Table{}, err
			}
			// Forward + backward GEMMs (the backward mirrors the forward
			// shapes at twice the volume).
			cb *= 3
			mb *= 3
			t.Rows = append(t.Rows, []string{
				dram.String(), n.String(), f2(cb * 1e3), f2(mb * 1e3),
				f2((cb + mb) * 1e3), pct(mb / (cb + mb)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"the memory-bound share grows as node scaling outpaces DRAM bandwidth (§5.3)",
		"faster HBM defers the flip to more advanced nodes")
	return t, nil
}
