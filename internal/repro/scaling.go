package repro

import (
	"fmt"

	"optimus/internal/arch"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/tech"
	"optimus/internal/train"
)

// ExtScaling is a weak-scaling study the paper's validation spans but
// never isolates: GPT-175B from 64 to 8192 A100s at a fixed per-GPU
// workload (batch grows with the data-parallel degree), showing where
// the efficiency goes as the cluster grows.
func ExtScaling() (Table, error) {
	t := Table{
		ID:    "ext-scaling",
		Title: "Weak scaling, GPT-175B on A100-HDR clusters (fixed per-GPU work, TP=8, PP=8)",
		Header: []string{"GPUs", "DP", "Batch", "s/batch", "MFU",
			"compute", "comm", "other", "tokens/s"},
	}
	for _, dp := range []int{1, 2, 8, 32, 128} {
		gpus := dp * 64
		batch := dp * 64 // 64 sequences per pipeline replica
		sys, err := arch.SystemOf(arch.A100(), gpus, 8, tech.NVLink3, tech.IBHDR)
		if err != nil {
			return Table{}, err
		}
		res, err := train.Predict(train.Spec{
			Model:  model.GPT175B(),
			System: sys,
			Map: parallel.Mapping{
				DP: dp, TP: 8, PP: 8, SP: true,
				Microbatch: 1, Schedule: parallel.OneFOneB,
			},
			GlobalBatch: batch,
			Seq:         2048,
			Precision:   tech.BF16,
			Recompute:   memfoot.Selective,
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(gpus), fmt.Sprint(dp), fmt.Sprint(batch),
			f1(res.Total), pct(res.MFU),
			pct(res.Compute / res.Total), pct(res.Communication / res.Total),
			pct(res.Other / res.Total),
			fmt.Sprintf("%.0f", float64(batch*2048)/res.Total),
		})
	}
	t.Notes = append(t.Notes,
		"per-GPU work is constant: ideal weak scaling would keep s/batch flat while tokens/s grows linearly",
		"the HDR-IB gradient all-reduce is the efficiency leak: its ring cost is N-independent but exposed (§5.3)")
	return t, nil
}
