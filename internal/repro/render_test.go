package repro

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sample() Table {
	return Table{
		ID:     "t",
		Title:  "sample",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}, {"2", "z"}},
		Notes:  []string{"a note"},
	}
}

func TestCSVRoundTrips(t *testing.T) {
	out, err := sample().CSV()
	if err != nil {
		t.Fatal(err)
	}
	// The quoted comma must survive a CSV parse.
	r := csv.NewReader(strings.NewReader(out))
	r.Comment = '#'
	records, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want 3", len(records))
	}
	if records[1][1] != "x,y" {
		t.Errorf("comma cell mangled: %q", records[1][1])
	}
	if !strings.Contains(out, "# a note") {
		t.Error("notes missing from CSV")
	}
}

func TestJSONShape(t *testing.T) {
	data, err := sample().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string              `json:"id"`
		Rows []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "t" || len(decoded.Rows) != 2 {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded.Rows[0]["b"] != "x,y" {
		t.Errorf("column keying broken: %+v", decoded.Rows[0])
	}
}

func TestRenderFormats(t *testing.T) {
	tb := sample()
	for _, f := range []string{"", "text", "csv", "json"} {
		out, err := tb.Render(f)
		if err != nil || out == "" {
			t.Errorf("Render(%q): %v", f, err)
		}
	}
	if _, err := tb.Render("xml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestRealTablesRenderEverywhere(t *testing.T) {
	tb, err := Run("table4")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"text", "csv", "json"} {
		if _, err := tb.Render(f); err != nil {
			t.Errorf("table4 as %s: %v", f, err)
		}
	}
}
