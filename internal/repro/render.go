package repro

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strings"
)

// CSV renders the table as RFC-4180 CSV with the header as the first
// record and notes as trailing comment lines.
func (t Table) CSV() (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write(t.Header); err != nil {
		return "", fmt.Errorf("repro: csv render: %w", err)
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return "", fmt.Errorf("repro: csv render: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", fmt.Errorf("repro: csv render: %w", err)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String(), nil
}

// jsonTable is the marshaling shape: rows become column-keyed objects so
// downstream plotting scripts need no positional knowledge.
type jsonTable struct {
	ID    string              `json:"id"`
	Title string              `json:"title"`
	Rows  []map[string]string `json:"rows"`
	Notes []string            `json:"notes,omitempty"`
}

// JSON renders the table as an indented JSON document.
func (t Table) JSON() ([]byte, error) {
	out := jsonTable{ID: t.ID, Title: t.Title, Notes: t.Notes}
	for _, row := range t.Rows {
		m := make(map[string]string, len(t.Header))
		for i, h := range t.Header {
			if i < len(row) {
				m[h] = row[i]
			}
		}
		out.Rows = append(out.Rows, m)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("repro: json render: %w", err)
	}
	return data, nil
}

// Render formats the table in the named format: "text" (default), "csv"
// or "json".
func (t Table) Render(format string) (string, error) {
	switch format {
	case "", "text":
		return t.String(), nil
	case "csv":
		return t.CSV()
	case "json":
		data, err := t.JSON()
		if err != nil {
			return "", err
		}
		return string(data) + "\n", nil
	default:
		return "", fmt.Errorf("repro: unknown format %q (text|csv|json)", format)
	}
}
