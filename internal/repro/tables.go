package repro

import (
	"fmt"

	"optimus/internal/arch"
	"optimus/internal/infer"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/tech"
	"optimus/internal/train"
	"optimus/internal/units"
	"optimus/internal/valdata"
)

// TrainSpecFor builds the training experiment for one Table 1 row on the
// paper's A100 validation platform.
func TrainSpecFor(c valdata.TrainCase) (train.Spec, error) {
	cfg, err := model.ByName(c.Model)
	if err != nil {
		return train.Spec{}, err
	}
	sys, err := arch.DGXA100(c.GPUs)
	if err != nil {
		return train.Spec{}, err
	}
	return train.Spec{
		Model:  cfg,
		System: sys,
		Map: parallel.Mapping{
			DP: c.DP, TP: c.TP, PP: c.PP, SP: c.SP,
			Microbatch: 1, Schedule: parallel.OneFOneB,
		},
		GlobalBatch: c.Batch,
		Seq:         2048,
		Precision:   tech.BF16,
		Recompute:   c.Recompute,
	}, nil
}

// Table1 regenerates the training-time validation.
func Table1() (Table, error) {
	t := Table{
		ID:    "table1",
		Title: "Training time per batch on A100 systems vs published Megatron-LM data",
		Header: []string{"Model", "#GPUs", "Batch", "DP-TP-PP-SP", "Recompute",
			"t_ref (s)", "t_paper (s)", "t_ours (s)", "err"},
	}
	var errs []float64
	for _, c := range valdata.Table1() {
		spec, err := TrainSpecFor(c)
		if err != nil {
			return Table{}, err
		}
		res, err := train.Predict(spec)
		if err != nil {
			return Table{}, err
		}
		e := units.RelErr(res.Total, c.RefSeconds)
		errs = append(errs, e)
		t.Rows = append(t.Rows, []string{
			c.Model, fmt.Sprint(c.GPUs), fmt.Sprint(c.Batch), spec.Map.String(),
			c.Recompute.String(), f1(c.RefSeconds), f1(c.PaperPredSeconds),
			f1(res.Total), pct(e),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean error %s, max %s (paper: mostly below 10%%)", pct(units.Mean(errs)), pct(units.Max(errs))),
		"GPT-22B row uses TP=8, PP=1: the paper's printed 1-8-8-1 is inconsistent with its 8-GPU count")
	return t, nil
}

// InferSpecFor builds the Table 2 experiment for one row and device
// generation.
func InferSpecFor(modelName string, gpus int, dev arch.Device, nv tech.NetworkTech) (infer.Spec, error) {
	cfg, err := model.ByName(modelName)
	if err != nil {
		return infer.Spec{}, err
	}
	sys, err := arch.SystemOf(dev, gpus, 8, nv, tech.IBNDR)
	if err != nil {
		return infer.Spec{}, err
	}
	return infer.Spec{
		Model: cfg, System: sys, TP: gpus, Batch: 1,
		PromptTokens: 200, GenTokens: 200, Precision: tech.FP16,
	}, nil
}

// Table2 regenerates the inference-latency validation.
func Table2() (Table, error) {
	t := Table{
		ID:    "table2",
		Title: "Inference latency (B=1, 200+200 tokens) vs NVIDIA published data",
		Header: []string{"Model", "#GPUs", "TP",
			"A100 ref (ms)", "A100 ours (ms)", "err",
			"H100 ref (ms)", "H100 ours (ms)", "err"},
	}
	var errs []float64
	for _, c := range valdata.Table2() {
		specA, err := InferSpecFor(c.Model, c.GPUs, arch.A100(), tech.NVLink3)
		if err != nil {
			return Table{}, err
		}
		resA, err := infer.Predict(specA)
		if err != nil {
			return Table{}, err
		}
		specH, err := InferSpecFor(c.Model, c.GPUs, arch.H100(), tech.NVLink4)
		if err != nil {
			return Table{}, err
		}
		resH, err := infer.Predict(specH)
		if err != nil {
			return Table{}, err
		}
		eA := units.RelErr(resA.Total*1e3, c.RefA100Ms)
		eH := units.RelErr(resH.Total*1e3, c.RefH100Ms)
		errs = append(errs, eA, eH)
		t.Rows = append(t.Rows, []string{
			c.Model, fmt.Sprint(c.GPUs), fmt.Sprint(c.GPUs),
			f1(c.RefA100Ms), ms(resA.Total), pct(eA),
			f1(c.RefH100Ms), ms(resH.Total), pct(eH),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean error %s, max %s (paper: within 13%%, one anomalous 8-GPU corner)",
			pct(units.Mean(errs)), pct(units.Max(errs))))
	return t, nil
}

// Table4 regenerates the per-GEMM bound analysis of the Llama2-13B
// summarization phase.
func Table4() (Table, error) {
	t := Table{
		ID:    "table4",
		Title: "Per-GEMM time and bound type, Llama2-13B prefill (B=1, 200 tokens)",
		Header: []string{"GEMM function",
			"A100 t (µs)", "A100 bound", "paper A100",
			"H100 t (µs)", "H100 bound", "paper H100"},
	}
	specA, err := InferSpecFor("Llama2-13B", 1, arch.A100(), tech.NVLink3)
	if err != nil {
		return Table{}, err
	}
	specH, err := InferSpecFor("Llama2-13B", 1, arch.H100(), tech.NVLink4)
	if err != nil {
		return Table{}, err
	}
	rowsA, err := infer.PrefillGEMMTable(specA)
	if err != nil {
		return Table{}, err
	}
	rowsH, err := infer.PrefillGEMMTable(specH)
	if err != nil {
		return Table{}, err
	}
	paper := valdata.Table4()
	for i := range rowsA {
		t.Rows = append(t.Rows, []string{
			rowsA[i].Function,
			us(rowsA[i].Time), boundLabel(rowsA[i]), fmt.Sprintf("%s (%.0fµs)", paper[i].A100Bound, paper[i].A100Us),
			us(rowsH[i].Time), boundLabel(rowsH[i]), fmt.Sprintf("%s (%.0fµs)", paper[i].H100Bound, paper[i].H100Us),
		})
	}
	t.Notes = append(t.Notes,
		"single-head kernels are dominated by kernel-launch software overhead; the paper files them under memory-bound",
		"the paper's absolute µs assume a higher effective peak; bound classification and A100:H100 ratios are the validated shape")
	return t, nil
}

// boundLabel maps the roofline classification onto the paper's
// compute/memory dichotomy: launch-dominated GEMV kernels are reported as
// memory-bound, as in Table 4.
func boundLabel(r infer.GEMMReport) string {
	if r.Bound == "launch" {
		return "memory*"
	}
	return r.Bound
}
