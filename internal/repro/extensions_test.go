package repro

import (
	"strings"
	"testing"
)

func TestExtFlashShape(t *testing.T) {
	tb, err := ExtFlash()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("ext-flash rows = %d, want 4", len(tb.Rows))
	}
	// Speedup grows monotonically with sequence length.
	prev := 0.0
	for _, row := range tb.Rows {
		s := strings.TrimSuffix(row[4], "x")
		v := cell(t, s)
		if v < prev {
			t.Errorf("flash speedup should grow with seq: %v", row)
		}
		prev = v
		// Flash-class activations are always below the unrecomputed ones.
		if cell(t, row[6]) >= cell(t, row[5]) {
			t.Errorf("flash-class activations should undercut standard: %v", row)
		}
	}
	if prev < 1.3 {
		t.Errorf("flash speedup at 16k = %.2fx, want > 1.3x", prev)
	}
}

func TestExtTCOShape(t *testing.T) {
	tb, err := ExtTCO()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("ext-tco rows = %d, want 7", len(tb.Rows))
	}
	perPFLOP := func(name string) float64 {
		return cell(t, find(t, tb, name)[6])
	}
	// The perf/TCO trend: each vendor generation lowers $/PFLOP at equal
	// fabric class.
	if !(perPFLOP("H100-NDR") < perPFLOP("A100-HDR")) {
		t.Error("H100 should beat A100 on $/PFLOP")
	}
	if !(perPFLOP("B200-NVS-L") < perPFLOP("H100-NVS")) {
		t.Error("B200 should beat H100 on $/PFLOP")
	}
	// Compute cost dominates energy in every row.
	for _, row := range tb.Rows {
		if cell(t, row[3]) < cell(t, row[4]) {
			t.Errorf("%s: energy cost above compute cost", row[0])
		}
	}
	// The A100 total sits in the published cost decade for a 300B-token
	// run on a well-utilized large cluster ($1M-$10M).
	if total := cell(t, find(t, tb, "A100-HDR")[5]); total < 1 || total > 10 {
		t.Errorf("A100 run cost $%.1fM outside the $1-10M decade", total)
	}
}

func TestExtensionIDsRegistered(t *testing.T) {
	ids := IDs()
	var flash, tco bool
	for _, id := range ids {
		switch id {
		case "ext-flash":
			flash = true
		case "ext-tco":
			tco = true
		}
	}
	if !flash || !tco {
		t.Errorf("extension experiments missing from registry: %v", ids)
	}
}
