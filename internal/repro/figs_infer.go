package repro

import (
	"fmt"

	"optimus/internal/arch"
	"optimus/internal/infer"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/roofline"
	"optimus/internal/tech"
)

// fig8Split computes the Fig. 8 bound-type decomposition with the paper's
// per-head attention-kernel accounting (Table 4's "single head" framing):
// one score and one context kernel per attention head, launch-dominated
// kernels filed under memory-bound.
func fig8Split(dev arch.Device, batch int) (computeBound, memoryBound float64) {
	cfg := model.Llama2_13B()
	eng := roofline.New(dev)
	prompt := 200
	rows := batch * prompt
	hd := cfg.HeadDim()

	classify := func(g roofline.GEMM, copies int) {
		est := eng.EstimateGEMM(g)
		time := est.Time * float64(copies)
		if est.Bound == roofline.BoundCompute {
			computeBound += time
		} else {
			memoryBound += time
		}
	}
	classify(roofline.GEMM{M: rows, N: 3 * cfg.Hidden, K: cfg.Hidden, Precision: tech.FP16}, 1)
	classify(roofline.GEMM{M: prompt, N: prompt, K: hd, Batch: batch, Precision: tech.FP16}, cfg.Heads)
	classify(roofline.GEMM{M: prompt, N: hd, K: prompt, Batch: batch, Precision: tech.FP16}, cfg.Heads)
	classify(roofline.GEMM{M: rows, N: cfg.Hidden, K: cfg.Hidden, Precision: tech.FP16}, 1)
	classify(roofline.GEMM{M: rows, N: 2 * cfg.FFN, K: cfg.Hidden, Precision: tech.FP16}, 1)
	classify(roofline.GEMM{M: rows, N: cfg.Hidden, K: cfg.FFN, Precision: tech.FP16}, 1)
	return computeBound, memoryBound
}

// Fig8 regenerates the prefill GEMM bound-type fractions for A100/H100 at
// B=1 and B=16, with the KV-cache/weights memory inset.
func Fig8() (Table, error) {
	t := Table{
		ID:    "fig8",
		Title: "Prefill GEMM time per layer by bound type, Llama2-13B (200-token prompt) + memory inset",
		Header: []string{"Device", "Batch", "compute-bound (ms)", "memory-bound (ms)",
			"compute share", "weights (GB)", "KV cache (GB)", "HBM (GB)"},
	}
	cfg := model.Llama2_13B()
	for _, d := range []arch.Device{arch.A100(), arch.H100()} {
		for _, b := range []int{1, 16} {
			cb, mb := fig8Split(d, b)
			fp := memfoot.Inference(cfg, 1, b, 400, 2)
			t.Rows = append(t.Rows, []string{
				d.Name, fmt.Sprint(b),
				f2(cb * 1e3), f2(mb * 1e3), pct(cb / (cb + mb)),
				gb(fp.Weights), f2(fp.KVCache / 1e9), gb(d.DRAMCapacity()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: A100 B=1 ≈ 67% compute-bound growing to 96% at B=16; H100 B=1 fully memory-bound, 85% compute at B=16",
		"the generation phase is entirely memory-bound on both devices (§6.1)")
	return t, nil
}

// Fig9DRAMSeries returns the §6.2 sweep: A100-class compute with the DRAM
// generation swapped, NVLink-Gen3 fabric (plus the HBMX-NV4 point).
type Fig9Point struct {
	Label string
	DRAM  tech.DRAMTech
	NV    tech.NetworkTech
}

// Fig9Points returns the sweep in paper order.
func Fig9Points() []Fig9Point {
	return []Fig9Point{
		{"GDR6-NV3", tech.GDDR6, tech.NVLink3},
		{"HBM2-NV3", tech.HBM2, tech.NVLink3},
		{"HBM2e-NV3", tech.HBM2E, tech.NVLink3},
		{"HBM3-NV3", tech.HBM3, tech.NVLink3},
		{"HBM3e-NV3", tech.HBM3E, tech.NVLink3},
		{"HBMX-NV3", tech.HBMX, tech.NVLink3},
		{"HBMX-NV4", tech.HBMX, tech.NVLink4},
	}
}

// A100WithDRAM returns an A100-class device with the off-chip memory
// generation replaced — "the on-chip specifications are same as A100".
func A100WithDRAM(d tech.DRAMTech) arch.Device {
	dev := arch.A100()
	spec := d.Spec()
	capacity := dev.DRAMCapacity()
	if spec.StackCapacity*5 > capacity {
		capacity = spec.StackCapacity * 5
	}
	dev.Name = "A100-" + spec.Name
	dev.Mem[len(dev.Mem)-1] = arch.MemLevel{
		Name: "HBM", Capacity: capacity, BW: spec.PeakBW, Util: 0.80,
	}
	dev.DRAM = d
	return dev
}

// Fig9Predict evaluates one sweep point at the given GPU count.
func Fig9Predict(p Fig9Point, gpus int) (infer.Result, error) {
	sys, err := arch.SystemOf(A100WithDRAM(p.DRAM), gpus, 8, p.NV, tech.IBNDR)
	if err != nil {
		return infer.Result{}, err
	}
	return infer.Predict(infer.Spec{
		Model: model.Llama2_13B(), System: sys, TP: gpus, Batch: 1,
		PromptTokens: 200, GenTokens: 200, Precision: tech.FP16,
	})
}

// Fig9 regenerates the DRAM-technology scaling of inference latency for 2-
// and 8-GPU systems, with the H100-HBM3e reference lines.
func Fig9() (Table, error) {
	t := Table{
		ID:    "fig9",
		Title: "Inference latency vs DRAM technology, Llama2-13B (B=1, 200+200 tokens), A100-class compute",
		Header: []string{"Memory-Fabric", "#GPUs", "total (ms)", "memory (ms)",
			"comm (ms)", "comm/memory"},
	}
	for _, p := range Fig9Points() {
		for _, gpus := range []int{2, 8} {
			res, err := Fig9Predict(p, gpus)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				p.Label, fmt.Sprint(gpus), ms(res.Total), ms(res.MemoryTime),
				ms(res.CommTime), f2(res.CommTime / res.MemoryTime),
			})
		}
	}
	// Reference lines: H100 systems with their native HBM3 stacks.
	for _, gpus := range []int{2, 8} {
		sys, err := arch.SystemOf(arch.H100(), gpus, 8, tech.NVLink4, tech.IBNDR)
		if err != nil {
			return Table{}, err
		}
		res, err := infer.Predict(infer.Spec{
			Model: model.Llama2_13B(), System: sys, TP: gpus, Batch: 1,
			PromptTokens: 200, GenTokens: 200, Precision: tech.FP16,
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			"H100-ref", fmt.Sprint(gpus), ms(res.Total), ms(res.MemoryTime),
			ms(res.CommTime), f2(res.CommTime / res.MemoryTime),
		})
	}
	t.Notes = append(t.Notes,
		"latency scales with DRAM bandwidth up to HBM3/HBM3e, then the L2 cache becomes the bound (§6.2)",
		"NV3→NV4 buys a modest communication gain (~12%); at 8 GPUs communication is ≈1.6x memory time")
	return t, nil
}
