// Package dse is the design-space-exploration framework of §3.6: a
// constrained optimization over the µarch resource allocation (area and
// power fractions for cores, SRAM, memory and network interfaces) that
// minimizes a workload's predicted execution time under a fixed budget.
// As in the paper, a (projected, numerical) gradient-descent search walks
// the allocation simplex, with multi-start to escape poor basins.
package dse

import (
	"fmt"
	"math"

	"optimus/internal/uarch"
)

// Objective evaluates one derived design, returning its execution time (or
// any other cost) in seconds. It is typically a closure over a training or
// inference prediction.
type Objective func(uarch.Design) (float64, error)

// Options tune the search.
type Options struct {
	// MaxIters bounds the gradient steps per start (default 60).
	MaxIters int
	// Step is the initial step size on the fraction simplex (default 0.05).
	Step float64
	// Eps is the finite-difference probe (default 0.01).
	Eps float64
	// Starts is the number of multi-start seeds (default 4, including the
	// default floorplan).
	Starts int
	// Tol stops a descent when the relative improvement falls below it
	// (default 1e-4).
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 60
	}
	if o.Step <= 0 {
		o.Step = 0.05
	}
	if o.Eps <= 0 {
		o.Eps = 0.01
	}
	if o.Starts <= 0 {
		o.Starts = 4
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	return o
}

// Result is the best design point found.
type Result struct {
	Design uarch.Design
	// Cost is the objective at the optimum.
	Cost float64
	// Evals counts objective evaluations (for benchmarks).
	Evals int
	// StartCost is the objective at the initial allocation, for reporting
	// the DSE gain.
	StartCost float64
}

// project clips the allocation vector into [lo, 1] and rescales each
// 4-fraction group (area, power) onto the simplex when oversubscribed,
// keeping a small floor so no component starves completely.
func project(v []float64) {
	const lo = 0.01
	for i := range v {
		if v[i] < lo {
			v[i] = lo
		}
		if v[i] > 0.97 {
			v[i] = 0.97
		}
	}
	normalize := func(group []float64, cap float64) {
		var s float64
		for _, f := range group {
			s += f
		}
		if s > cap {
			for i := range group {
				group[i] *= cap / s
			}
		}
	}
	normalize(v[0:4], 1.0)
	normalize(v[4:8], 1.0)
}

// evalVec derives and scores one allocation vector.
func evalVec(base uarch.Design, obj Objective, v []float64) (float64, error) {
	alloc, err := uarch.AllocationFromVector(v)
	if err != nil {
		return math.Inf(1), err
	}
	d := base
	d.Alloc = alloc
	cost, err := obj(d)
	if err != nil {
		// Infeasible points are fenced with +Inf rather than aborting the
		// search: the simplex boundary is full of them.
		return math.Inf(1), nil
	}
	if math.IsNaN(cost) || cost <= 0 {
		return math.Inf(1), nil
	}
	return cost, nil
}

// descend runs one projected-gradient descent from v0.
func descend(base uarch.Design, obj Objective, v0 []float64, o Options, evals *int) ([]float64, float64) {
	v := append([]float64(nil), v0...)
	project(v)
	best, _ := evalVec(base, obj, v)
	*evals++
	step := o.Step

	for iter := 0; iter < o.MaxIters; iter++ {
		// Numerical gradient on the 8 fractions.
		grad := make([]float64, len(v))
		for i := range v {
			probe := append([]float64(nil), v...)
			probe[i] += o.Eps
			project(probe)
			c, _ := evalVec(base, obj, probe)
			*evals++
			if math.IsInf(c, 1) || math.IsInf(best, 1) {
				grad[i] = 0
				continue
			}
			grad[i] = (c - best) / o.Eps
		}
		norm := 0.0
		for _, g := range grad {
			norm += g * g
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}

		// Backtracking line search along -grad.
		improved := false
		for trial := step; trial > step/16; trial /= 2 {
			cand := append([]float64(nil), v...)
			for i := range cand {
				cand[i] -= trial * grad[i] / norm
			}
			project(cand)
			c, _ := evalVec(base, obj, cand)
			*evals++
			if c < best {
				rel := (best - c) / best
				v, best = cand, c
				improved = true
				if rel < o.Tol {
					return v, best
				}
				break
			}
		}
		if !improved {
			step /= 2
			if step < 1e-3 {
				break
			}
		}
	}
	return v, best
}

// starts returns the multi-start seed allocations: the design's own, the
// default floorplan, a compute-heavy and a memory-heavy corner.
func starts(base uarch.Design, n int) [][]float64 {
	seeds := [][]float64{
		base.Alloc.Vector(),
		uarch.DefaultAllocation().Vector(),
		{0.60, 0.05, 0.10, 0.04, 0.70, 0.05, 0.15, 0.05}, // compute-heavy
		{0.25, 0.20, 0.25, 0.04, 0.40, 0.15, 0.35, 0.05}, // memory-heavy
	}
	if n < len(seeds) {
		seeds = seeds[:n]
	}
	return seeds
}

// Optimize searches the allocation space of the base design for the
// minimum-cost point.
func Optimize(base uarch.Design, obj Objective, o Options) (Result, error) {
	if obj == nil {
		return Result{}, fmt.Errorf("dse: nil objective")
	}
	o = o.withDefaults()

	evals := 0
	startCost, err := evalVec(base, obj, base.Alloc.Vector())
	if err != nil {
		return Result{}, err
	}

	bestV := base.Alloc.Vector()
	bestC := math.Inf(1)
	for _, seed := range starts(base, o.Starts) {
		v, c := descend(base, obj, seed, o, &evals)
		if c < bestC {
			bestV, bestC = v, c
		}
	}
	if math.IsInf(bestC, 1) {
		return Result{}, fmt.Errorf("dse: no feasible design point found")
	}
	alloc, err := uarch.AllocationFromVector(bestV)
	if err != nil {
		return Result{}, err
	}
	out := base
	out.Alloc = alloc
	return Result{Design: out, Cost: bestC, Evals: evals, StartCost: startCost}, nil
}
