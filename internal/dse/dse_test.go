package dse

import (
	"fmt"
	"math"
	"testing"

	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/tech"
	"optimus/internal/train"
	"optimus/internal/uarch"
)

func baseDesign() uarch.Design {
	return uarch.Design{
		Node:    tech.N5,
		DRAM:    tech.HBM2E,
		Network: tech.IBXDRx8,
		Budget:  uarch.A100ClassBudget(),
		Alloc:   uarch.DefaultAllocation(),
	}
}

// trainObjective predicts GPT-7B iteration time on a small derived system —
// the Fig. 6 objective at reduced scale for test speed.
func trainObjective(d uarch.Design) (float64, error) {
	sys, err := uarch.SystemFrom(d, 64, 4)
	if err != nil {
		return 0, err
	}
	res, err := train.Predict(train.Spec{
		Model:  model.GPT7B(),
		System: sys,
		Map: parallel.Mapping{
			DP: 4, TP: 4, PP: 4, SP: true,
			Microbatch: 1, Schedule: parallel.OneFOneB,
		},
		GlobalBatch: 32,
		Seq:         2048,
		Precision:   tech.BF16,
	})
	if err != nil {
		return 0, err
	}
	return res.Total, nil
}

func TestOptimizeImprovesOnSeed(t *testing.T) {
	// Start from a deliberately bad floorplan; the search must find
	// something at least as good as the default one.
	base := baseDesign()
	base.Alloc = uarch.Allocation{
		AreaCore: 0.05, AreaSRAM: 0.40, AreaMemIO: 0.05, AreaNetIO: 0.02,
		PowerCore: 0.10, PowerSRAM: 0.40, PowerMemIO: 0.05, PowerNetIO: 0.02,
	}
	res, err := Optimize(base, trainObjective, Options{MaxIters: 25, Starts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= res.StartCost {
		t.Errorf("DSE did not improve: %g -> %g", res.StartCost, res.Cost)
	}
	if res.Cost <= 0 || math.IsInf(res.Cost, 0) {
		t.Errorf("bad optimum cost %g", res.Cost)
	}
	if err := res.Design.Alloc.Validate(); err != nil {
		t.Errorf("optimum allocation invalid: %v", err)
	}
	if res.Evals == 0 {
		t.Error("no objective evaluations recorded")
	}
}

func TestOptimizeQuadraticBowl(t *testing.T) {
	// A synthetic objective with a known optimum: cost is minimized when
	// AreaCore == 0.5. The search must land near it.
	obj := func(d uarch.Design) (float64, error) {
		x := d.Alloc.AreaCore
		return 1 + (x-0.5)*(x-0.5), nil
	}
	res, err := Optimize(baseDesign(), obj, Options{MaxIters: 80, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Design.Alloc.AreaCore-0.5) > 0.05 {
		t.Errorf("optimum AreaCore = %g, want ≈ 0.5", res.Design.Alloc.AreaCore)
	}
}

func TestOptimizeHandlesInfeasibleRegions(t *testing.T) {
	// An objective that rejects most of the space must not break the
	// search as long as some region is feasible.
	obj := func(d uarch.Design) (float64, error) {
		if d.Alloc.AreaCore < 0.3 {
			return 0, fmt.Errorf("infeasible")
		}
		return 2 - d.Alloc.AreaCore, nil
	}
	res, err := Optimize(baseDesign(), obj, Options{MaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Design.Alloc.AreaCore < 0.3 {
		t.Errorf("optimum in infeasible region: %g", res.Design.Alloc.AreaCore)
	}
}

func TestOptimizeAllInfeasibleFails(t *testing.T) {
	obj := func(uarch.Design) (float64, error) { return 0, fmt.Errorf("nope") }
	if _, err := Optimize(baseDesign(), obj, Options{MaxIters: 5, Starts: 2}); err == nil {
		t.Error("fully infeasible space should error")
	}
}

func TestOptimizeNilObjective(t *testing.T) {
	if _, err := Optimize(baseDesign(), nil, Options{}); err == nil {
		t.Error("nil objective should error")
	}
}

func TestProjectKeepsSimplex(t *testing.T) {
	v := []float64{0.9, 0.9, 0.9, 0.9, -1, 2, 0.5, 0.5}
	project(v)
	sumA := v[0] + v[1] + v[2] + v[3]
	sumP := v[4] + v[5] + v[6] + v[7]
	if sumA > 1+1e-9 || sumP > 1+1e-9 {
		t.Errorf("projection violated simplex: area=%g power=%g", sumA, sumP)
	}
	for i, f := range v {
		if f < 0.005 || f > 0.98 {
			t.Errorf("component %d outside bounds: %g", i, f)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIters == 0 || o.Step == 0 || o.Eps == 0 || o.Starts == 0 || o.Tol == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}
