// Package kernels enumerates the per-device operations of one transformer
// layer under Megatron-style tensor (and sequence) parallelism — the LLM
// task graph of the paper's Fig. 1 at kernel granularity. Each op is either
// a (batched) GEMM, a streaming element-wise kernel, or a collective
// placeholder that the training/inference engines resolve against a fabric.
//
// The op shapes implement the Megatron partitioning of §3.2: QKV columns
// and attention heads split across the TP group, the output and MLP-down
// projections split along rows, one all-reduce after the attention block
// and one after the MLP block in the forward pass (or the equivalent
// all-gather + reduce-scatter pair under sequence parallelism).
package kernels

import (
	"fmt"

	"optimus/internal/model"
	"optimus/internal/roofline"
	"optimus/internal/tech"
)

// Kind discriminates op categories.
type Kind int

const (
	KindGEMM Kind = iota
	KindElementwise
	KindFused
	KindAllReduce
	KindAllGather
	KindReduceScatter
)

// String names the op kind.
func (k Kind) String() string {
	switch k {
	case KindGEMM:
		return "gemm"
	case KindElementwise:
		return "elementwise"
	case KindFused:
		return "fused"
	case KindAllReduce:
		return "all-reduce"
	case KindAllGather:
		return "all-gather"
	case KindReduceScatter:
		return "reduce-scatter"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one schedulable unit.
type Op struct {
	Name string
	Kind Kind
	// GEMM payload when Kind == KindGEMM.
	GEMM roofline.GEMM
	// EW payload when Kind == KindElementwise.
	EW roofline.Elementwise
	// Fused payload when Kind == KindFused.
	Fused roofline.Fused
	// CommBytes is the payload for collective kinds; the group is always
	// the TP group of the Exec that built the op.
	CommBytes float64
}

// Phase selects which pass of which workload the ops describe.
type Phase int

const (
	// TrainForward is one training forward pass over a full sequence.
	TrainForward Phase = iota
	// Prefill is the inference summarization pass over the prompt.
	Prefill
	// Decode is one autoregressive generation step.
	Decode
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case TrainForward:
		return "train-forward"
	case Prefill:
		return "prefill"
	case Decode:
		return "decode"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Exec fixes the execution context for op enumeration.
type Exec struct {
	// Batch is the per-device microbatch size in sequences.
	Batch int
	// Seq is the number of tokens processed per sequence this pass:
	// the sequence length for training/prefill, 1 for decode.
	Seq int
	// Context is the attention span: Seq for training/prefill, the current
	// KV-cache length for decode.
	Context int
	// TP is the tensor-parallel group size.
	TP int
	// SP enables sequence parallelism for the norm/dropout blocks (§1.3).
	SP bool
	// Flash fuses the attention core (scores, softmax, context) into one
	// IO-aware kernel that never materializes the s×s score matrix in
	// DRAM — the FlashAttention optimization of §1.1. Memory accounting
	// should then pair with selective recomputation, whose Eq. (2)
	// discount matches the tensors flash attention never stores.
	Flash bool
	// Precision is the GEMM compute precision (the tensor-engine format:
	// BF16 on Ampere, FP8 on Hopper, FP4 on Blackwell).
	Precision tech.Precision
	// Store is the activation storage precision driving element-wise
	// traffic and collective payloads; mixed-precision training keeps it
	// at 2 bytes even when GEMMs run in FP8/FP4. Leave zero to reuse
	// Precision.
	Store tech.Precision
	// Phase selects training forward, prefill, or decode.
	Phase Phase
}

// storeBytes returns the storage element size: Store if set, else the
// compute precision.
func (e Exec) storeBytes() float64 {
	if e.Store != tech.FP32 {
		return e.Store.Bytes()
	}
	return e.Precision.Bytes()
}

// Validate checks the execution context.
func (e Exec) Validate() error {
	switch {
	case e.Batch <= 0 || e.Seq <= 0 || e.Context <= 0 || e.TP <= 0:
		return fmt.Errorf("kernels: non-positive exec shape %+v", e)
	case e.Phase == Decode && e.Seq != 1:
		return fmt.Errorf("kernels: decode processes one token, got seq %d", e.Seq)
	case e.SP && e.Phase != TrainForward:
		return fmt.Errorf("kernels: sequence parallelism is a training optimization")
	}
	return nil
}

func (e Exec) training() bool { return e.Phase == TrainForward }

// tokens returns batch×seq, the GEMM row count of the pass.
func (e Exec) tokens() int { return e.Batch * e.Seq }

// spDiv divides element-wise work across the TP group under SP.
func (e Exec) spDiv() float64 {
	if e.SP {
		return float64(e.TP)
	}
	return 1
}

// Per-element traffic coefficients in units of element size; masks are one
// byte regardless of precision. A fused streaming kernel reads and writes
// each element once per logical pass.
const (
	normAccesses       = 2 // read + write (fused Welford statistics)
	actAccesses        = 2 // read + write
	gluAccesses        = 3 // read gate, read up, write
	softmaxAccesses    = 3 // fused online softmax: 2 reads + 1 write
	residualAccesses   = 3 // read x, read skip, write
	dropoutAddAccesses = 3 // read x, read skip, write (plus 1-byte mask)
	ropeAccesses       = 2 // read + write on Q,K rows
)

// LayerForward returns the ordered per-device ops of one transformer
// layer's forward pass for the given context.
func LayerForward(cfg model.Config, e Exec) []Op {
	return AppendLayerForward(nil, cfg, e)
}

// AppendLayerForward appends LayerForward's ops to dst and returns the
// extended slice — the allocation-free enumeration the inference step-cost
// engine reuses a scratch buffer with.
func AppendLayerForward(dst []Op, cfg model.Config, e Exec) []Op {
	if err := e.Validate(); err != nil {
		panic(err)
	}
	eb := e.storeBytes()
	h := cfg.Hidden
	t := e.TP
	rows := e.tokens()
	headsPerRank := cfg.Heads / t
	if headsPerRank < 1 {
		headsPerRank = 1
	}
	kvPerRank := cfg.KVHeads / t
	if kvPerRank < 1 {
		kvPerRank = 1
	}
	hd := cfg.HeadDim()
	hiddenElems := float64(rows * h)

	ops := dst
	add := func(o Op) { ops = append(ops, o) }

	norm := func(name string) Op {
		return Op{Name: name, Kind: KindElementwise, EW: roofline.Elementwise{
			Name:         name,
			Elements:     hiddenElems / e.spDiv(),
			BytesPerElem: normAccesses * eb,
			FLOPsPerElem: 8,
		}}
	}
	// Under SP, the norm output must be all-gathered before the block's
	// GEMMs; without SP the block input is already replicated.
	gatherIn := func() Op {
		return Op{Name: "sp-all-gather", Kind: KindAllGather, CommBytes: hiddenElems * eb}
	}
	// The block output partial sums are combined with an all-reduce, or a
	// reduce-scatter under SP (§3.2, Fig. 2).
	combineOut := func(name string) Op {
		if e.SP {
			return Op{Name: name + "-reduce-scatter", Kind: KindReduceScatter, CommBytes: hiddenElems * eb}
		}
		return Op{Name: name + "-all-reduce", Kind: KindAllReduce, CommBytes: hiddenElems * eb}
	}
	skipJoin := func(name string) Op {
		acc, extra := residualAccesses, 0.0
		if e.training() {
			acc, extra = dropoutAddAccesses, 1 // dropout mask byte
		}
		return Op{Name: name, Kind: KindElementwise, EW: roofline.Elementwise{
			Name:         name,
			Elements:     hiddenElems / e.spDiv(),
			BytesPerElem: float64(acc)*eb + extra,
			FLOPsPerElem: 3,
		}}
	}

	// ---- Attention block ----
	add(norm("norm1"))
	if e.SP {
		add(gatherIn())
	}
	qkvCols := (headsPerRank + 2*kvPerRank) * hd
	add(Op{Name: "qkv", Kind: KindGEMM, GEMM: roofline.GEMM{
		M: rows, N: qkvCols, K: h, Precision: e.Precision,
	}})
	if !cfg.LearnedPositions {
		// RoPE rotation on the Q and K slices.
		add(Op{Name: "rope", Kind: KindElementwise, EW: roofline.Elementwise{
			Name:         "rope",
			Elements:     float64(rows * (headsPerRank + kvPerRank) * hd),
			BytesPerElem: ropeAccesses * eb,
			FLOPsPerElem: 6,
		}})
	}
	scoreBatch := e.Batch * headsPerRank
	if e.Flash {
		// One IO-aware kernel: both attention GEMMs' FLOPs, but DRAM
		// traffic only for Q, K, V and the output — the score matrix
		// stays in on-chip memory (§1.1).
		qBytes := float64(e.Batch*e.Seq*headsPerRank*hd) * eb
		kvBytes := 2 * float64(e.Batch*e.Context*kvPerRank*hd) * eb
		flops := 4 * float64(scoreBatch) * float64(e.Seq) * float64(e.Context) * float64(hd)
		add(Op{Name: "flash-attention", Kind: KindFused, Fused: roofline.Fused{
			Name:      "flash-attention",
			FLOPs:     flops,
			DRAMBytes: 2*qBytes + kvBytes,
			Precision: e.Precision,
		}})
	} else {
		add(Op{Name: "scores", Kind: KindGEMM, GEMM: roofline.GEMM{
			M: e.Seq, N: e.Context, K: hd, Batch: scoreBatch, Precision: e.Precision,
		}})
		scoreElems := float64(scoreBatch * e.Seq * e.Context)
		add(Op{Name: "softmax", Kind: KindElementwise, EW: roofline.Elementwise{
			Name:         "softmax",
			Elements:     scoreElems,
			BytesPerElem: softmaxAccesses * eb,
			FLOPsPerElem: 5,
		}})
		if e.training() {
			add(Op{Name: "attn-dropout", Kind: KindElementwise, EW: roofline.Elementwise{
				Name:         "attn-dropout",
				Elements:     scoreElems,
				BytesPerElem: actAccesses*eb + 1,
				FLOPsPerElem: 1,
			}})
		}
		add(Op{Name: "attn-values", Kind: KindGEMM, GEMM: roofline.GEMM{
			M: e.Seq, N: hd, K: e.Context, Batch: scoreBatch, Precision: e.Precision,
		}})
	}
	add(Op{Name: "attn-proj", Kind: KindGEMM, GEMM: roofline.GEMM{
		M: rows, N: h, K: headsPerRank * hd, Precision: e.Precision,
	}})
	add(combineOut("attn"))
	add(skipJoin("attn-skip"))

	// ---- MLP block ----
	add(norm("norm2"))
	if e.SP {
		add(gatherIn())
	}
	fPerRank := cfg.FFN / t
	if cfg.MLP == model.MLPSwiGLU {
		add(Op{Name: "mlp-gate-up", Kind: KindGEMM, GEMM: roofline.GEMM{
			M: rows, N: 2 * fPerRank, K: h, Precision: e.Precision,
		}})
		add(Op{Name: "swiglu", Kind: KindElementwise, EW: roofline.Elementwise{
			Name:         "swiglu",
			Elements:     float64(rows * fPerRank),
			BytesPerElem: gluAccesses * eb,
			FLOPsPerElem: 8,
		}})
	} else {
		add(Op{Name: "mlp-up", Kind: KindGEMM, GEMM: roofline.GEMM{
			M: rows, N: fPerRank, K: h, Precision: e.Precision,
		}})
		add(Op{Name: "gelu", Kind: KindElementwise, EW: roofline.Elementwise{
			Name:         "gelu",
			Elements:     float64(rows * fPerRank),
			BytesPerElem: actAccesses * eb,
			FLOPsPerElem: 8,
		}})
	}
	add(Op{Name: "mlp-down", Kind: KindGEMM, GEMM: roofline.GEMM{
		M: rows, N: h, K: fPerRank, Precision: e.Precision,
	}})
	add(combineOut("mlp"))
	add(skipJoin("mlp-skip"))

	return ops
}

// EmbeddingForward returns the input-embedding ops (token gather plus
// learned-position add where present).
func EmbeddingForward(cfg model.Config, e Exec) []Op {
	return AppendEmbeddingForward(nil, cfg, e)
}

// AppendEmbeddingForward appends EmbeddingForward's ops to dst.
func AppendEmbeddingForward(dst []Op, cfg model.Config, e Exec) []Op {
	eb := e.storeBytes()
	elems := float64(e.tokens() * cfg.Hidden)
	ops := append(dst, Op{Name: "embed-gather", Kind: KindElementwise, EW: roofline.Elementwise{
		Name:         "embed-gather",
		Elements:     elems,
		BytesPerElem: 2 * eb,
		FLOPsPerElem: 0,
	}})
	if cfg.LearnedPositions {
		ops = append(ops, Op{Name: "pos-add", Kind: KindElementwise, EW: roofline.Elementwise{
			Name:         "pos-add",
			Elements:     elems,
			BytesPerElem: residualAccesses * eb,
			FLOPsPerElem: 1,
		}})
	}
	return ops
}

// LogitsForward returns the output-head ops: the final norm and the
// vocabulary projection, column-split across the TP group (vocab-parallel
// cross entropy needs no activation all-reduce).
func LogitsForward(cfg model.Config, e Exec) []Op {
	return AppendLogitsForward(nil, cfg, e)
}

// AppendLogitsForward appends LogitsForward's ops to dst.
func AppendLogitsForward(dst []Op, cfg model.Config, e Exec) []Op {
	eb := e.storeBytes()
	return append(dst,
		Op{Name: "final-norm", Kind: KindElementwise, EW: roofline.Elementwise{
			Name:         "final-norm",
			Elements:     float64(e.tokens() * cfg.Hidden),
			BytesPerElem: normAccesses * eb,
			FLOPsPerElem: 8,
		}},
		Op{Name: "logits", Kind: KindGEMM, GEMM: roofline.GEMM{
			M: e.tokens(), N: cfg.Vocab / e.TP, K: cfg.Hidden, Precision: e.Precision,
		}},
	)
}

// Totals aggregates an op stream.
type Totals struct {
	GEMMFLOPs float64
	GEMMBytes float64 // compulsory off-chip traffic
	EWBytes   float64
	// CommBytes is per-device wire traffic up to the ring (N-1)/N factor:
	// an all-reduce moves twice its payload, an all-gather or
	// reduce-scatter moves it once — which is why replacing the all-reduce
	// with an AG+RS pair under sequence parallelism is free (§1.3).
	CommBytes float64
	GEMMCount int
	EWCount   int
	CollCount int
}

// Summarize tallies an op list.
func Summarize(ops []Op) Totals {
	var t Totals
	for _, o := range ops {
		switch o.Kind {
		case KindGEMM:
			t.GEMMFLOPs += o.GEMM.FLOPs()
			t.GEMMBytes += o.GEMM.CompulsoryBytes()
			t.GEMMCount++
		case KindElementwise:
			t.EWBytes += o.EW.Elements * o.EW.BytesPerElem
			t.EWCount++
		case KindFused:
			t.GEMMFLOPs += o.Fused.FLOPs
			t.GEMMBytes += o.Fused.DRAMBytes
			t.GEMMCount++
		case KindAllReduce:
			t.CommBytes += 2 * o.CommBytes
			t.CollCount++
		default:
			t.CommBytes += o.CommBytes
			t.CollCount++
		}
	}
	return t
}
