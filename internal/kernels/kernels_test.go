package kernels

import (
	"math"
	"testing"

	"optimus/internal/model"
	"optimus/internal/tech"
)

func trainExec(tp int, sp bool) Exec {
	return Exec{Batch: 1, Seq: 2048, Context: 2048, TP: tp, SP: sp,
		Precision: tech.BF16, Phase: TrainForward}
}

func findOp(t *testing.T, ops []Op, name string) Op {
	t.Helper()
	for _, o := range ops {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("op %q not found", name)
	return Op{}
}

func TestLayerForwardGEMMFLOPs(t *testing.T) {
	// Per-layer forward FLOPs for a GPT at TP=1 must match the textbook
	// 24·b·s·h² + 4·b·s²·h (attention+MLP tensor contractions).
	cfg := model.GPT175B()
	e := trainExec(1, false)
	tot := Summarize(LayerForward(cfg, e))
	h := float64(cfg.Hidden)
	s := float64(e.Seq)
	want := 24*s*h*h + 4*s*s*h
	if math.Abs(tot.GEMMFLOPs-want)/want > 1e-9 {
		t.Errorf("layer GEMM FLOPs = %g, want %g", tot.GEMMFLOPs, want)
	}
}

func TestTPDividesGEMMWork(t *testing.T) {
	cfg := model.GPT175B()
	full := Summarize(LayerForward(cfg, trainExec(1, false)))
	split := Summarize(LayerForward(cfg, trainExec(8, false)))
	ratio := full.GEMMFLOPs / split.GEMMFLOPs
	if math.Abs(ratio-8) > 1e-9 {
		t.Errorf("TP=8 should divide GEMM FLOPs by 8, got ratio %g", ratio)
	}
}

func TestMegatronCommPattern(t *testing.T) {
	// §3.2: exactly one all-reduce per block per forward pass — two per
	// layer — of the full activation size s·b·h.
	cfg := model.GPT175B()
	e := trainExec(8, false)
	ops := LayerForward(cfg, e)
	var ars int
	for _, o := range ops {
		if o.Kind == KindAllReduce {
			ars++
			want := float64(e.Seq*e.Batch*cfg.Hidden) * 2 // bf16 bytes
			if o.CommBytes != want {
				t.Errorf("all-reduce bytes = %g, want %g", o.CommBytes, want)
			}
		}
	}
	if ars != 2 {
		t.Errorf("layer has %d all-reduces, want 2", ars)
	}
}

func TestSequenceParallelSwapsCollectives(t *testing.T) {
	// SP replaces each all-reduce with an all-gather + reduce-scatter pair
	// of equal total volume and divides the norm/dropout elements by TP.
	cfg := model.GPT175B()
	noSP := LayerForward(cfg, trainExec(8, false))
	withSP := LayerForward(cfg, trainExec(8, true))

	if Summarize(withSP).CommBytes != Summarize(noSP).CommBytes {
		t.Errorf("SP comm volume = %g, want equal to non-SP %g",
			Summarize(withSP).CommBytes, Summarize(noSP).CommBytes)
	}
	var ag, rs, ar int
	for _, o := range withSP {
		switch o.Kind {
		case KindAllGather:
			ag++
		case KindReduceScatter:
			rs++
		case KindAllReduce:
			ar++
		}
	}
	if ag != 2 || rs != 2 || ar != 0 {
		t.Errorf("SP collectives = %d AG, %d RS, %d AR; want 2,2,0", ag, rs, ar)
	}

	n1 := findOp(t, noSP, "norm1").EW.Elements
	n1sp := findOp(t, withSP, "norm1").EW.Elements
	if math.Abs(n1/n1sp-8) > 1e-9 {
		t.Errorf("SP should divide norm elements by TP: %g vs %g", n1, n1sp)
	}
}

func TestTrainingAddsDropout(t *testing.T) {
	cfg := model.GPT22B()
	train := LayerForward(cfg, trainExec(1, false))
	infer := LayerForward(cfg, Exec{Batch: 1, Seq: 200, Context: 200, TP: 1,
		Precision: tech.FP16, Phase: Prefill})
	hasDropout := func(ops []Op) bool {
		for _, o := range ops {
			if o.Name == "attn-dropout" {
				return true
			}
		}
		return false
	}
	if !hasDropout(train) {
		t.Error("training layer must include attention dropout")
	}
	if hasDropout(infer) {
		t.Error("inference layer must not include dropout")
	}
}

func TestDecodeShapes(t *testing.T) {
	// One decode step: GEMM rows = batch, attention reads the whole cache.
	cfg := model.Llama2_13B()
	e := Exec{Batch: 1, Seq: 1, Context: 300, TP: 1, Precision: tech.FP16, Phase: Decode}
	ops := LayerForward(cfg, e)

	qkv := findOp(t, ops, "qkv").GEMM
	if qkv.M != 1 || qkv.K != 5120 || qkv.N != 3*5120 {
		t.Errorf("decode qkv = %dx%dx%d", qkv.M, qkv.N, qkv.K)
	}
	if !qkv.IsGEMV() {
		t.Error("decode qkv should be a GEMV")
	}
	sc := findOp(t, ops, "scores").GEMM
	if sc.M != 1 || sc.N != 300 || sc.K != 128 || sc.Batch != 40 {
		t.Errorf("decode scores = %+v", sc)
	}
	av := findOp(t, ops, "attn-values").GEMM
	if av.K != 300 || av.N != 128 {
		t.Errorf("decode attn-values = %+v", av)
	}
}

func TestGQAShrinksKVProjections(t *testing.T) {
	cfg := model.Llama2_70B() // 64 heads, 8 KV heads
	e := Exec{Batch: 1, Seq: 200, Context: 200, TP: 8, Precision: tech.FP16, Phase: Prefill}
	qkv := findOp(t, LayerForward(cfg, e), "qkv").GEMM
	// Per rank: 8 query heads + 2×1 KV heads, each 128 wide.
	want := (8 + 2*1) * 128
	if qkv.N != want {
		t.Errorf("GQA qkv width = %d, want %d", qkv.N, want)
	}
}

func TestLlamaHasRoPEAndSwiGLU(t *testing.T) {
	cfg := model.Llama2_7B()
	ops := LayerForward(cfg, Exec{Batch: 1, Seq: 128, Context: 128, TP: 1,
		Precision: tech.FP16, Phase: Prefill})
	findOp(t, ops, "rope")
	findOp(t, ops, "swiglu")
	findOp(t, ops, "mlp-gate-up")
	for _, o := range ops {
		if o.Name == "gelu" {
			t.Error("llama layer should not contain GELU")
		}
	}
}

func TestGPTHasGELUNoRoPE(t *testing.T) {
	cfg := model.GPT22B()
	ops := LayerForward(cfg, trainExec(1, false))
	findOp(t, ops, "gelu")
	for _, o := range ops {
		if o.Name == "rope" {
			t.Error("GPT layer should not contain RoPE")
		}
	}
}

func TestEmbeddingAndLogits(t *testing.T) {
	cfg := model.GPT175B()
	e := trainExec(8, false)
	emb := EmbeddingForward(cfg, e)
	if len(emb) != 2 { // gather + learned positions
		t.Errorf("GPT embedding ops = %d, want 2", len(emb))
	}
	lg := LogitsForward(cfg, e)
	g := findOp(t, lg, "logits").GEMM
	if g.N != cfg.Vocab/8 || g.K != cfg.Hidden || g.M != 2048 {
		t.Errorf("logits GEMM = %+v", g)
	}

	// Llama has no learned positions: single embedding op.
	if got := len(EmbeddingForward(model.Llama2_7B(), Exec{Batch: 1, Seq: 8, Context: 8, TP: 1, Precision: tech.FP16, Phase: Prefill})); got != 1 {
		t.Errorf("llama embedding ops = %d, want 1", got)
	}
}

func TestExecValidate(t *testing.T) {
	bad := []Exec{
		{Batch: 0, Seq: 1, Context: 1, TP: 1, Phase: Decode},
		{Batch: 1, Seq: 2, Context: 2, TP: 1, Phase: Decode}, // decode must be seq 1
		{Batch: 1, Seq: 8, Context: 8, TP: 1, SP: true, Phase: Prefill},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	good := Exec{Batch: 1, Seq: 1, Context: 64, TP: 2, Precision: tech.FP16, Phase: Decode}
	if err := good.Validate(); err != nil {
		t.Errorf("valid exec rejected: %v", err)
	}
}

func TestLayerForwardPanicsOnInvalidExec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid exec should panic")
		}
	}()
	LayerForward(model.GPT7B(), Exec{})
}

func TestSummarizeCounts(t *testing.T) {
	cfg := model.GPT175B()
	tot := Summarize(LayerForward(cfg, trainExec(8, false)))
	if tot.GEMMCount != 5 { // qkv, scores, av, proj, mlp-up, mlp-down = 6 for GPT
		// GPT GELU MLP has 2 GEMMs: up and down → total 6.
		if tot.GEMMCount != 6 {
			t.Errorf("GEMM count = %d, want 6", tot.GEMMCount)
		}
	}
	if tot.CollCount != 2 {
		t.Errorf("collective count = %d, want 2", tot.CollCount)
	}
	if tot.EWCount == 0 || tot.EWBytes <= 0 {
		t.Error("element-wise ops missing")
	}
}

func TestKindAndPhaseStrings(t *testing.T) {
	if KindGEMM.String() != "gemm" || KindAllGather.String() != "all-gather" {
		t.Error("kind names wrong")
	}
	if Prefill.String() != "prefill" || Decode.String() != "decode" {
		t.Error("phase names wrong")
	}
}

// The attention score and value GEMMs must read the KV cache: their
// compulsory bytes grow linearly with context while QKV stays fixed.
func TestDecodeKVReadGrowsWithContext(t *testing.T) {
	cfg := model.Llama2_13B()
	at := func(ctx int) float64 {
		e := Exec{Batch: 1, Seq: 1, Context: ctx, TP: 1, Precision: tech.FP16, Phase: Decode}
		ops := LayerForward(cfg, e)
		return findOp(t, ops, "scores").GEMM.CompulsoryBytes() +
			findOp(t, ops, "attn-values").GEMM.CompulsoryBytes()
	}
	b100, b400 := at(100), at(400)
	if ratio := b400 / b100; math.Abs(ratio-4) > 0.15 {
		t.Errorf("KV read should scale ~linearly with context: ratio %g", ratio)
	}
}
