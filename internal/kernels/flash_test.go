package kernels

import (
	"math"
	"testing"

	"optimus/internal/model"
	"optimus/internal/tech"
)

func flashExec(flash bool, seq int) Exec {
	return Exec{Batch: 1, Seq: seq, Context: seq, TP: 1, Flash: flash,
		Precision: tech.BF16, Phase: TrainForward}
}

func TestFlashReplacesAttentionCore(t *testing.T) {
	cfg := model.GPT22B()
	ops := LayerForward(cfg, flashExec(true, 2048))
	var fused, scores, softmax int
	for _, op := range ops {
		switch op.Name {
		case "flash-attention":
			fused++
		case "scores":
			scores++
		case "softmax", "attn-dropout":
			softmax++
		}
	}
	if fused != 1 || scores != 0 || softmax != 0 {
		t.Errorf("flash layer: fused=%d scores=%d softmax-ish=%d, want 1/0/0",
			fused, scores, softmax)
	}
}

func TestFlashSameFLOPsLessTraffic(t *testing.T) {
	// §1.1: FlashAttention addresses "the memory access to and from DRAM
	// at the cost of FLOPs" — the tensor-contraction FLOPs are unchanged
	// (the recompute cost lands in the backward pass), while the s×s
	// score tensor's DRAM traffic disappears.
	cfg := model.GPT22B()
	std := Summarize(LayerForward(cfg, flashExec(false, 4096)))
	fl := Summarize(LayerForward(cfg, flashExec(true, 4096)))

	if math.Abs(std.GEMMFLOPs-fl.GEMMFLOPs)/std.GEMMFLOPs > 1e-9 {
		t.Errorf("forward FLOPs should match: %g vs %g", std.GEMMFLOPs, fl.GEMMFLOPs)
	}
	stdTraffic := std.GEMMBytes + std.EWBytes
	flTraffic := fl.GEMMBytes + fl.EWBytes
	if flTraffic >= stdTraffic {
		t.Errorf("flash should reduce traffic: %g vs %g", flTraffic, stdTraffic)
	}
	// At 4k context the quadratic tensors dominate: expect > 2x saving.
	if stdTraffic/flTraffic < 2 {
		t.Errorf("long-context traffic saving only %.1fx", stdTraffic/flTraffic)
	}
}

func TestFlashSavingGrowsWithContext(t *testing.T) {
	cfg := model.GPT22B()
	saving := func(seq int) float64 {
		std := Summarize(LayerForward(cfg, flashExec(false, seq)))
		fl := Summarize(LayerForward(cfg, flashExec(true, seq)))
		return (std.GEMMBytes + std.EWBytes) / (fl.GEMMBytes + fl.EWBytes)
	}
	if s2k, s8k := saving(2048), saving(8192); s8k <= s2k {
		t.Errorf("flash saving should grow with context: %.2fx at 2k vs %.2fx at 8k", s2k, s8k)
	}
}

func TestFlashWorksForDecode(t *testing.T) {
	cfg := model.Llama2_13B()
	e := Exec{Batch: 1, Seq: 1, Context: 300, TP: 1, Flash: true,
		Precision: tech.FP16, Phase: Decode}
	ops := LayerForward(cfg, e)
	for _, op := range ops {
		if op.Name == "flash-attention" {
			// The KV read must still be charged: 2·ctx·h·2 bytes.
			wantKV := 2.0 * 300 * 5120 * 2
			if op.Fused.DRAMBytes < wantKV {
				t.Errorf("flash decode DRAM bytes %g below the KV read %g",
					op.Fused.DRAMBytes, wantKV)
			}
			return
		}
	}
	t.Fatal("no flash-attention op in decode layer")
}

func TestFusedKindString(t *testing.T) {
	if KindFused.String() != "fused" {
		t.Errorf("KindFused = %q", KindFused.String())
	}
}
