package units

import (
	"math"
	"testing"
)

// TestAlmostEqualExactFastPath pins the justification on AlmostEqual's
// //lint:floateq comparison: the exact a == b fast path is what makes
// equal infinities compare equal — beyond it, Inf-Inf is NaN and the
// epsilon test would reject them.
func TestAlmostEqualExactFastPath(t *testing.T) {
	inf := math.Inf(1)
	if !AlmostEqual(inf, inf, 1e-9) {
		t.Error("equal +Inf values must be AlmostEqual")
	}
	if !AlmostEqual(math.Inf(-1), math.Inf(-1), 1e-9) {
		t.Error("equal -Inf values must be AlmostEqual")
	}
	if AlmostEqual(inf, math.Inf(-1), 1e-9) {
		t.Error("opposite infinities must not be AlmostEqual")
	}
	if AlmostEqual(1.0, inf, 1e-9) {
		t.Error("a finite value must not be AlmostEqual to an infinity")
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1e-9) {
		t.Error("NaN must never be AlmostEqual to anything")
	}
	if !AlmostEqual(1.0, 1.0, 0) {
		t.Error("identical finite values must pass at zero epsilon")
	}
}
