package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{1.5e3, "1.50 KB"},
		{2.5e6, "2.50 MB"},
		{80e9, "80.00 GB"},
		{1.9e12, "1.90 TB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 s"},
		{1.5, "1.500 s"},
		{0.0125, "12.500 ms"},
		{42e-6, "42.000 µs"},
		{3e-9, "3.0 ns"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatFLOPs(t *testing.T) {
	if got := FormatFLOPs(3.2e12); got != "3.20 TFLOP" {
		t.Errorf("FormatFLOPs = %q", got)
	}
	if got := FormatFLOPs(10); !strings.Contains(got, "FLOP") {
		t.Errorf("FormatFLOPs small = %q", got)
	}
}

func TestFormatRate(t *testing.T) {
	if got := FormatRate(3.35e12); got != "3.35 TB/s" {
		t.Errorf("FormatRate = %q", got)
	}
	if got := FormatRate(200e9); got != "200.00 GB/s" {
		t.Errorf("FormatRate = %q", got)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(11, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr(11,10) = %g, want 0.1", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0,0) = %g, want 0", got)
	}
	if got := RelErr(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelErr(1,0) = %g, want +Inf", got)
	}
}

func TestWithinRel(t *testing.T) {
	if !WithinRel(105, 100, 0.05) {
		t.Error("105 should be within 5% of 100")
	}
	if WithinRel(106, 100, 0.05) {
		t.Error("106 should not be within 5% of 100")
	}
}

func TestCeil(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3},
	}
	for _, c := range cases {
		if got := Ceil(c.a, c.b); got != c.want {
			t.Errorf("Ceil(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Ceil with zero divisor should panic")
		}
	}()
	Ceil(1, 0)
}

func TestCeilF(t *testing.T) {
	if got := CeilF(10, 4); got != 3 {
		t.Errorf("CeilF(10,4) = %g, want 3", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(-1, 0, 1); got != 0 {
		t.Errorf("Clamp(-1,0,1) = %g", got)
	}
	if got := Clamp(2, 0, 1); got != 1 {
		t.Errorf("Clamp(2,0,1) = %g", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %g", got)
	}
}

func TestSumMeanMax(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Sum(xs) != 10 {
		t.Errorf("Sum = %g", Sum(xs))
	}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Max(xs) != 4 {
		t.Errorf("Max = %g", Max(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice helpers should return 0")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %g, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1e12, 1e12+1, 1e-9) {
		t.Error("large numbers differing by 1 should be almost equal")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Error("1 and 2 are not almost equal")
	}
}

// Property: RelErr is scale-invariant — RelErr(a*s, b*s) == RelErr(a, b)
// for any positive scale.
func TestRelErrScaleInvariantProperty(t *testing.T) {
	f := func(a, b float64, scaleSeed uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Keep magnitudes sane to avoid overflow in the product.
		if math.Abs(a) > 1e100 || math.Abs(b) > 1e100 || b == 0 {
			return true
		}
		s := 1.0 + float64(scaleSeed)
		return math.Abs(RelErr(a*s, b*s)-RelErr(a, b)) < 1e-9*(1+RelErr(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Ceil(a,b)*b >= a and (Ceil(a,b)-1)*b < a for positive a, b.
func TestCeilProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		ai, bi := int(a), int(b)%64+1
		c := Ceil(ai, bi)
		return c*bi >= ai && (c-1)*bi < ai
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clamp output is always within bounds.
func TestClampProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		c := Clamp(x, -1, 1)
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
