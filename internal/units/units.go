// Package units provides scalar quantity helpers shared across the Optimus
// performance model: byte sizes, rates, durations-as-seconds, and tolerant
// floating-point comparison. All model arithmetic uses float64 seconds,
// bytes, and FLOPs so that expressions read like the paper's equations.
package units

import (
	"fmt"
	"math"
)

// Common scale factors. The model follows vendor convention: bandwidths and
// FLOP rates are decimal (1 GB/s = 1e9 B/s), capacities are binary where the
// vendor quotes GiB but the paper rounds to decimal GB; we use decimal
// throughout for consistency with the paper's numbers (80 GB = 80e9 B).
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12

	KiB = 1024
	MiB = 1024 * 1024
	GiB = 1024 * 1024 * 1024

	GFLOP = 1e9
	TFLOP = 1e12
	PFLOP = 1e15

	Micro = 1e-6
	Milli = 1e-3
)

// Seconds is an elapsed model time. A plain float64 keeps the arithmetic in
// the performance equations readable; the type alias exists purely for
// documentation in signatures.
type Seconds = float64

// Bytes is a data volume in bytes.
type Bytes = float64

// FLOPs is a count of floating-point operations.
type FLOPs = float64

// BytesPerSec is a bandwidth.
type BytesPerSec = float64

// FLOPsPerSec is a compute throughput.
type FLOPsPerSec = float64

// FormatBytes renders a byte count with a binary-free decimal unit suffix,
// e.g. 1.50 GB, matching how the paper reports capacities.
func FormatBytes(b float64) string {
	switch {
	case math.Abs(b) >= TB:
		return fmt.Sprintf("%.2f TB", b/TB)
	case math.Abs(b) >= GB:
		return fmt.Sprintf("%.2f GB", b/GB)
	case math.Abs(b) >= MB:
		return fmt.Sprintf("%.2f MB", b/MB)
	case math.Abs(b) >= KB:
		return fmt.Sprintf("%.2f KB", b/KB)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// FormatSeconds renders a model time with an adaptive unit (s, ms, µs, ns).
func FormatSeconds(s float64) string {
	abs := math.Abs(s)
	switch {
	case abs >= 1:
		return fmt.Sprintf("%.3f s", s)
	case abs >= 1e-3:
		return fmt.Sprintf("%.3f ms", s*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3f µs", s*1e6)
	case abs == 0:
		return "0 s"
	default:
		return fmt.Sprintf("%.1f ns", s*1e9)
	}
}

// FormatFLOPs renders an operation count (GFLOP/TFLOP/PFLOP).
func FormatFLOPs(f float64) string {
	switch {
	case math.Abs(f) >= PFLOP:
		return fmt.Sprintf("%.2f PFLOP", f/PFLOP)
	case math.Abs(f) >= TFLOP:
		return fmt.Sprintf("%.2f TFLOP", f/TFLOP)
	case math.Abs(f) >= GFLOP:
		return fmt.Sprintf("%.2f GFLOP", f/GFLOP)
	default:
		return fmt.Sprintf("%.0f FLOP", f)
	}
}

// FormatRate renders a bandwidth in B/s with adaptive units.
func FormatRate(r float64) string {
	switch {
	case math.Abs(r) >= TB:
		return fmt.Sprintf("%.2f TB/s", r/TB)
	case math.Abs(r) >= GB:
		return fmt.Sprintf("%.2f GB/s", r/GB)
	case math.Abs(r) >= MB:
		return fmt.Sprintf("%.2f MB/s", r/MB)
	default:
		return fmt.Sprintf("%.0f B/s", r)
	}
}

// RelErr returns |pred-ref|/|ref|. A zero reference with a nonzero prediction
// returns +Inf; both zero returns 0.
func RelErr(pred, ref float64) float64 {
	if ref == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(pred-ref) / math.Abs(ref)
}

// WithinRel reports whether pred is within tol relative error of ref.
func WithinRel(pred, ref, tol float64) bool {
	return RelErr(pred, ref) <= tol
}

// AlmostEqual reports whether two floats agree to within an absolute epsilon
// scaled by magnitude, suitable for unit-test comparisons of model outputs.
func AlmostEqual(a, b, eps float64) bool {
	//lint:floateq deliberate exact fast path: handles equal infinities, where a-b is NaN and the epsilon test fails
	if a == b {
		return true
	}
	// Any remaining infinity (opposite signs, or one finite operand) is a
	// true mismatch: without this, eps*Inf swallows the difference.
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= eps*scale
}

// Ceil divides a by b rounding up; it panics on a non-positive divisor since
// every call site passes a structural count (tiles, microbatches, chunks).
func Ceil(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("units.Ceil: non-positive divisor %d", b))
	}
	return (a + b - 1) / b
}

// CeilF is the float ceiling-division helper for tile counts derived from
// float dimensions.
func CeilF(a, b float64) float64 {
	if b <= 0 {
		panic(fmt.Sprintf("units.CeilF: non-positive divisor %g", b))
	}
	return math.Ceil(a / b)
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Sum adds a slice of float64.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of positive xs, or 0 if empty.
// Non-positive entries are rejected with a panic: geometric means of model
// times are only meaningful for positive samples.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("units.GeoMean: non-positive sample %g", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
