// Bursty-serving walks the temporal workload knobs: piecewise
// arrival-rate schedules (diurnal quiet/burst traffic), heavy-tailed
// request lengths, and multi-turn session cohorts whose growing context
// exercises the paged policy's prefix cache.
//
// Step 1 serves the same average load twice — once as a constant Poisson
// rate, once as a quiet-burst-quiet schedule — and shows the burst
// blowing up queueing and tail latency that the average rate hides.
// Step 2 swaps the fixed request shape for a heavy-tailed lognormal mix:
// the median request is unchanged, but rare long prompts and answers
// stretch the tail.
// Step 3 expands single-shot clients into multi-turn session cohorts:
// each turn's prompt carries the session's prior context as a growing
// shared prefix, so deeper sessions lift the prefix-cache hit rate and
// the prefill tokens it saves.
// Step 4 hands the schedule and the session depth to the sweep engine as
// grid axes, ranking flat vs bursty × one-shot vs cohort candidates in
// one deterministic grid.
//
// Run with: go run ./examples/bursty-serving [model]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"optimus"
)

func main() {
	modelName := "llama2-13b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	cfg, err := optimus.ModelByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := optimus.NewSystem("a100", 1, "nvlink3", "ndr")
	if err != nil {
		log.Fatal(err)
	}

	base := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 1, Precision: optimus.FP16,
		PromptTokens: 400, GenTokens: 150,
		Arrival: optimus.PoissonArrivals,
		Requests: 256, Seed: 1,
	}

	// --- Step 1: the same average rate, flat vs bursty -------------------
	// A two-minute diurnal miniature: one quiet minute, a 15-second burst
	// at 16 req/s, then a moderate tail. The timeline averages 3.25 req/s.
	sched, err := optimus.ParseServeSchedule("0-60:1,60-75:16,75-120:2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on 1 x A100, 400+150-token requests\n\n", cfg)
	fmt.Println("step 1: constant 3.25 req/s vs the same average as a burst")
	fmt.Printf("  %-26s %10s %10s %10s\n", "arrivals", "queue-p95", "ttft-p95", "e2e-p95")
	for _, tc := range []struct {
		label string
		rate  float64
		sched optimus.ServeSchedule
	}{
		{"flat 3.25 req/s", 3.25, nil},
		{optimus.FormatServeSchedule(sched), 0, sched},
	} {
		s := base
		s.Rate, s.Schedule = tc.rate, tc.sched
		res, serr := optimus.Serve(s)
		if serr != nil {
			log.Fatal(serr)
		}
		fmt.Printf("  %-26s %9.3fs %9.3fs %9.3fs\n",
			tc.label, res.Queue.P95, res.TTFT.P95, res.E2E.P95)
	}
	fmt.Println("\nBoth runs serve the same number of requests at the same average")
	fmt.Println("rate, but the burst packs arrivals faster than the engine drains")
	fmt.Println("them — the backlog it builds is what the constant-rate model of the")
	fmt.Println("same traffic never sees.")

	// --- Step 2: heavy-tailed request lengths ----------------------------
	// The ~sigma mix syntax draws each request's lengths from a lognormal
	// around the median, so the typical request is unchanged while rare
	// giants stretch the tail.
	fmt.Println("\nstep 2: fixed 400+150 shapes vs a lognormal mix around them")
	fmt.Printf("  %-26s %10s %10s %8s\n", "mix", "e2e-p50", "e2e-p95", "e2e-max")
	for _, mixSpec := range []string{
		"chat:1:400:150",
		"chat:1:400~0.6:150~0.8",
	} {
		mix, merr := optimus.ParseServeMix(mixSpec)
		if merr != nil {
			log.Fatal(merr)
		}
		s := base
		s.Rate = 3.25
		s.PromptTokens, s.GenTokens = 0, 0
		s.Mix = mix
		res, serr := optimus.Serve(s)
		if serr != nil {
			log.Fatal(serr)
		}
		fmt.Printf("  %-26s %9.3fs %9.3fs %7.3fs\n",
			mixSpec, res.E2E.P50, res.E2E.P95, res.E2E.Max)
	}
	fmt.Println("\nThe median request barely moves; the tail belongs to the rare long")
	fmt.Println("draws, which is where production latency distributions live.")

	// --- Step 3: session cohorts grow a shared prefix --------------------
	// Turn k's prompt replays the session's k-1 prior exchanges as context.
	// The paged policy caches that growing prefix per session: from the
	// third turn on, admission finds the session's context resident, grows
	// it in place, and skips its share of prefill.
	fmt.Println("\nstep 3: session depth vs prefix-cache reuse (paged admission)")
	fmt.Printf("  %-8s %6s %12s %10s %10s\n",
		"turns", "hits", "saved-toks", "ttft-p95", "e2e-p95")
	for _, turns := range []int{1, 2, 4} {
		s := base
		s.Rate = 2
		s.Policy = optimus.PagedPolicy
		s.Turns = turns
		if turns > 1 {
			s.Think = 5
		}
		res, serr := optimus.Serve(s)
		if serr != nil {
			log.Fatal(serr)
		}
		fmt.Printf("  %-8d %6d %12d %9.3fs %9.3fs\n",
			turns, res.PrefixHits, res.PrefixSavedTokens, res.TTFT.P95, res.E2E.P95)
	}
	fmt.Println("\nOne-shot clients have nothing to reuse, and a two-turn session never")
	fmt.Println("hits either: turn 2 materializes context the cache had not seen, so")
	fmt.Println("reuse starts at turn 3. Past that depth, prefix hits and the prefill")
	fmt.Println("tokens they save climb with every extra turn, even as the grown")
	fmt.Println("prompts make each turn individually heavier.")

	// --- Step 4: the schedule and session depth as sweep axes ------------
	fmt.Println("\nstep 4: flat vs bursty × one-shot vs cohorts as a ranked grid")
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload: optimus.ServingSweep,
		Models:   []optimus.Model{cfg},
		Systems:  []*optimus.System{sys},
		Schedules: []optimus.ServeSchedule{
			{{Start: 0, End: 120, Rate: 3.25}}, // constant → the flat candidate
			sched,                              // the step-1 burst
		},
		Policies:      []optimus.ServePolicy{optimus.PagedPolicy},
		Turns:         []int{1, 4},
		Think:         5,
		Seqs:          []int{400},
		GenTokens:     []int{150},
		ServeRequests: 128,
		Constraints:   optimus.PlanConstraints{TopK: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", res.Stats)
	for i, row := range res.Rows {
		p := row.Point
		arr := fmt.Sprintf("rate %g", p.Rate)
		if len(p.Schedule) > 0 {
			arr = "sched " + optimus.FormatServeSchedule(p.Schedule)
		}
		shape := "one-shot"
		if p.Turns > 1 {
			shape = fmt.Sprintf("%d-turn", p.Turns)
		}
		fmt.Printf("  %2d. %-8s %-26s p95 %7.3fs  hits %3d  saved %6d\n",
			i+1, shape, arr, row.Metrics.Time,
			row.Metrics.PrefixHits, row.Metrics.PrefixSavedTokens)
	}
	fmt.Println("\nThe constant schedule canonicalizes to the plain-rate candidate, so")
	fmt.Println("the grid stays honest: flat and bursty arrivals, one-shot and cohort")
	fmt.Println("clients, ranked under one deterministic key per candidate.")
}
