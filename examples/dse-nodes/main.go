// DSE-nodes runs the paper's §5.3 technology exploration with the public
// API: at each logic node from N12 to N1, search the area/power allocation
// for the design that minimizes GPT-7B training time on 1024 derived
// accelerators, and watch the bottleneck migrate from compute to memory to
// network.
//
// Run with: go run ./examples/dse-nodes
package main

import (
	"fmt"
	"log"

	"optimus"
	"optimus/internal/tech"
	"optimus/internal/uarch"
)

func main() {
	gpt, err := optimus.ModelByName("gpt-7b")
	if err != nil {
		log.Fatal(err)
	}

	objective := func(d optimus.Design) (float64, error) {
		sys, err := optimus.DeriveSystem(d, 1024, 4)
		if err != nil {
			return 0, err
		}
		res, err := optimus.PredictTraining(optimus.TrainSpec{
			Model:  gpt,
			System: sys,
			Map: optimus.Mapping{
				DP: 64, TP: 4, PP: 4, SP: true,
				Microbatch: 1, Schedule: optimus.OneFOneB,
			},
			GlobalBatch: 512,
			Seq:         2048,
			Precision:   optimus.BF16,
		})
		if err != nil {
			return 0, err
		}
		return res.Total, nil
	}

	fmt.Println("GPT-7B on 1024 derived GPUs (64-4-4-4), A100-class area/power budget")
	fmt.Println("DSE-optimized allocation per logic node, HBM2e + 200 GB/s network:")
	fmt.Printf("\n%-5s %12s %10s %12s %12s %14s\n",
		"node", "s/iter", "gain", "area->core", "power->mem", "fp16 derived")

	for _, node := range tech.Nodes {
		base := optimus.Design{
			Node:    node,
			DRAM:    tech.HBM2E,
			Network: tech.IBXDRx8,
			Budget:  uarch.A100ClassBudget(),
			Alloc:   uarch.DefaultAllocation(),
		}
		res, err := optimus.OptimizeDesign(base, objective, optimus.DSEOptions{MaxIters: 20, Starts: 3})
		if err != nil {
			log.Fatal(err)
		}
		dev, err := optimus.DeriveDevice(res.Design)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5v %12.3f %9.1f%% %12.2f %12.2f %11.0f TF\n",
			node, res.Cost, 100*(res.StartCost-res.Cost)/res.StartCost,
			res.Design.Alloc.AreaCore, res.Design.Alloc.PowerMemIO,
			dev.Compute[optimus.FP16]/1e12)
	}

	fmt.Println("\nThe iteration time collapses through N7 and then saturates: once logic")
	fmt.Println("scaling outruns HBM bandwidth and the 200 GB/s network, extra transistors")
	fmt.Println("stop helping — the §5.3 conclusion, regenerated from scratch.")
}
