// Disaggregated-serving walks the DistServe-style prefill/decode split of
// the serving simulator from a sanity anchor to a pool-split capacity
// plan.
//
// Production serving systems increasingly run the two inference phases on
// separate pools: prefill instances absorb the compute-bound prompt
// passes, decode instances the memory-bound token loop, and every request
// hands its KV cache across an interconnect in between. The simulator's
// Disaggregated admission policy models exactly that capacity structure:
// requests admit their prompt's pages against the prefill pool
// (ServeSpec.PrefillDevices), migrate to the decode pool
// (ServeSpec.DecodeDevices) when their first token is emitted — paying a
// per-request point-to-point transfer of their prompt's KV bytes over
// ServeSpec.TransferGBps — and decode growth and preemption run against
// the decode pool only.
//
// Step 1 anchors the model: a co-located split (both pools spanning every
// device) over an infinite-bandwidth link reproduces the Paged policy
// byte for byte — the degenerate-equivalence guarantee the test suite
// pins. Step 2 prices the interconnect: the same deployment over slower
// and slower links shows the KV hand-off surfacing in TPOT and E2E while
// TTFT holds. Step 3 tightens the KV budget so the split itself decides
// capacity, and step 4 hands the pool split to the sweep engine as a
// grid axis, ranking splits against monolithic policies per arrival
// rate.
//
// Run with: go run ./examples/disaggregated-serving [model]
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"optimus"
)

func main() {
	modelName := "llama2-13b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	cfg, err := optimus.ModelByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := optimus.NewSystem("h100", 8, "nvlink4", "ndr")
	if err != nil {
		log.Fatal(err)
	}

	base := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 8, Precision: optimus.FP16,
		PromptTokens: 2000, GenTokens: 200,
		Arrival: optimus.PoissonArrivals, Rate: 6,
		Requests: 256, Seed: 1,
	}

	// --- Step 1: the degenerate anchor ------------------------------------
	// A co-located split over a free link is block-for-block the paged
	// policy; if these two rows ever diverge, the pool accounting broke.
	paged := base
	paged.Policy = optimus.PagedPolicy
	pagedRes, err := optimus.Serve(paged)
	if err != nil {
		log.Fatal(err)
	}
	colocated := base
	colocated.Policy = optimus.DisaggregatedPolicy
	colocated.PrefillDevices, colocated.DecodeDevices = 8, 8
	colocated.TransferGBps = math.Inf(1)
	coRes, err := optimus.Serve(colocated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on 8 x H100, 2000+200-token requests, %.0f req/s Poisson\n\n", cfg, base.Rate)
	fmt.Println("step 1: co-located split + infinite bandwidth == paged, byte for byte")
	fmt.Printf("  %-22s e2e-p95 %.3fs  ttft-p95 %.3fs  tok/s %.0f\n",
		"paged/16", pagedRes.E2E.P95, pagedRes.TTFT.P95, pagedRes.TokensPerSec)
	fmt.Printf("  %-22s e2e-p95 %.3fs  ttft-p95 %.3fs  tok/s %.0f  (%d free transfers)\n\n",
		"disagg 8+8 @ inf", coRes.E2E.P95, coRes.TTFT.P95, coRes.TokensPerSec, coRes.KVTransfers)

	// --- Step 2: pricing the interconnect ---------------------------------
	// A real split hands every request's prompt KV across a link. Slower
	// links stall the first decode steps: TPOT and E2E degrade while TTFT
	// (emitted by the prefill pool before the hand-off) holds.
	fmt.Println("step 2: the KV hand-off priced over the pool interconnect (split 4+4)")
	fmt.Printf("  %-12s %10s %10s %10s %12s %10s\n",
		"link", "ttft-p95", "tpot-p95", "e2e-p95", "transfers", "xfer-total")
	for _, gbps := range []float64{math.Inf(1), 400, 50, 5} {
		s := base
		s.Policy = optimus.DisaggregatedPolicy
		s.PrefillDevices, s.DecodeDevices = 4, 4
		s.TransferGBps = gbps
		res, serr := optimus.Serve(s)
		if serr != nil {
			log.Fatal(serr)
		}
		label := fmt.Sprintf("%g GB/s", gbps)
		if math.IsInf(gbps, 1) {
			label = "free"
		}
		fmt.Printf("  %-12s %9.3fs %9.4fs %9.3fs %12d %9.3fs\n",
			label, res.TTFT.P95, res.TPOT.P95, res.E2E.P95, res.KVTransfers, res.TransferTimeTotal)
	}

	// --- Step 3: sizing the pools under KV pressure -----------------------
	// The split only matters when capacity binds. On a KV budget of
	// sixteen full contexts, a decode-heavy split keeps more sequences
	// growing (fewer preemptions) while a prefill-heavy one admits prompts
	// it then starves of decode pages — the sizing question disaggregation
	// exists to answer.
	probe := base
	probe.Policy = optimus.PagedPolicy
	probeRes, err := optimus.Serve(probe)
	if err != nil {
		log.Fatal(err)
	}
	perContext := probeRes.KVCapacity / float64(probeRes.KVPagesTotal) * // bytes per page
		float64((base.PromptTokens+base.GenTokens+15)/16) // pages per full context
	fmt.Println("\nstep 3: the same load on a KV budget of ~16 full contexts, per split")
	fmt.Printf("  %-12s %8s %9s %10s %10s %8s\n",
		"split", "preempt", "recomp", "ttft-p95", "e2e-p95", "tok/s")
	for _, split := range []optimus.SweepPoolSplit{
		{Prefill: 2, Decode: 6}, {Prefill: 4, Decode: 4}, {Prefill: 6, Decode: 2},
	} {
		s := base
		s.Policy = optimus.DisaggregatedPolicy
		s.PrefillDevices, s.DecodeDevices = split.Prefill, split.Decode
		s.TransferGBps = 50
		s.KVCapacity = 16 * perContext
		res, serr := optimus.Serve(s)
		if serr != nil {
			log.Fatal(serr)
		}
		fmt.Printf("  %d+%d devices %8d %9d %9.3fs %9.3fs %8.0f\n",
			split.Prefill, split.Decode, res.Preemptions, res.RecomputedTokens,
			res.TTFT.P95, res.E2E.P95, res.TokensPerSec)
	}

	// --- Step 4: the pool split as a sweep axis ---------------------------
	// One grid ranks monolithic reservation and paged admission against
	// three disaggregated splits at two arrival rates, all from the same
	// deterministic engine (rankings byte-identical to serial).
	fmt.Println("\nstep 4: pool splits as a grid axis (ranked by p95 E2E)")
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload: optimus.ServingSweep,
		Models:   []optimus.Model{cfg},
		Systems:  []*optimus.System{sys},
		Rates:    []float64{2, 6},
		Policies: []optimus.ServePolicy{
			optimus.ReserveFullPolicy, optimus.PagedPolicy, optimus.DisaggregatedPolicy,
		},
		PoolSplits: []optimus.SweepPoolSplit{
			{Prefill: 2, Decode: 6}, {Prefill: 4, Decode: 4}, {Prefill: 6, Decode: 2},
		},
		TransferGBps:  50,
		Seqs:          []int{2000},
		GenTokens:     []int{200},
		ServeRequests: 128,
		Constraints:   optimus.PlanConstraints{TopK: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", res.Stats)
	for i, row := range res.Rows {
		p := row.Point
		pol := p.Policy.String()
		if p.Policy == optimus.DisaggregatedPolicy {
			pol = fmt.Sprintf("disagg %d+%d", p.PrefillDevices, p.DecodeDevices)
		}
		fmt.Printf("  %2d. rate %g/s  %-12s e2e-p95 %7.3fs  ttft-p95 %7.3fs  xfer %6.3fs\n",
			i+1, p.Rate, pol, row.Metrics.Time, row.Metrics.TTFTP95, row.Metrics.TransferTime)
	}
}
