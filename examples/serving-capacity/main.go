// Serving-capacity walks the continuous-batching serving simulator from a
// single deployment to a capacity plan.
//
// Step 1 simulates one deployment under rising Poisson load and watches
// the SLO surface (TTFT/TPOT/E2E percentiles) degrade as queueing sets in.
// Step 2 hands the same question to the sweep engine: arrival rates ×
// batch caps × GPU counts, ranked by p95 end-to-end latency, which is the
// capacity-planning answer — the cheapest configuration that still meets
// the SLO at the expected traffic.
//
// Everything is priced by the step-cost engine (one prefill pass plus
// per-token decode steps), so the simulator, the single-request predictor
// and the sweep all agree by construction.
//
// Run with: go run ./examples/serving-capacity [model]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"optimus"
)

func main() {
	modelName := "llama2-13b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	cfg, err := optimus.ModelByName(modelName)
	if err != nil {
		log.Fatal(err)
	}

	// --- Step 1: one deployment under rising load -----------------------
	sys, err := optimus.NewSystem("h100", 2, "nvlink4", "ndr")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on 2 x H100, 200+200-token requests, Poisson arrivals\n\n", cfg)
	fmt.Printf("%8s %10s %10s %12s %12s %10s %8s\n",
		"rate", "ttft-p50", "ttft-p99", "tpot-p99", "e2e-p95", "tok/s", "batch")
	for _, rate := range []float64{0.25, 0.5, 1, 2, 4} {
		res, serr := optimus.Serve(optimus.ServeSpec{
			Model: cfg, System: sys, TP: 2, Precision: optimus.FP16,
			PromptTokens: 200, GenTokens: 200,
			Arrival: optimus.PoissonArrivals, Rate: rate,
			Requests: 256, Seed: 1,
		})
		if serr != nil {
			log.Fatal(serr)
		}
		fmt.Printf("%6.2f/s %8.1fms %8.1fms %10.2fms %10.2fs %10.0f %8.1f\n",
			rate, res.TTFT.P50*1e3, res.TTFT.P99*1e3, res.TPOT.P99*1e3,
			res.E2E.P95, res.TokensPerSec, res.MeanBatch)
	}
	fmt.Println("\nAt low rates TTFT is just the prefill pass; as load rises, requests")
	fmt.Println("queue for KV-cache admission and share decode iterations — throughput")
	fmt.Println("climbs with the mean batch while the SLO percentiles stretch.")

	// --- Step 2: capacity planning via the sweep engine -----------------
	var systems []*optimus.System
	for _, n := range []int{1, 2, 4} {
		s, serr := optimus.NewSystem("h100", n, "nvlink4", "ndr")
		if serr != nil {
			log.Fatal(serr)
		}
		systems = append(systems, s)
	}
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload:      optimus.ServingSweep,
		Models:        []optimus.Model{cfg},
		Systems:       systems,
		Rates:         []float64{1, 2},
		BatchCaps:     []int{8, 32},
		ServeRequests: 128,
		Constraints:   optimus.PlanConstraints{TopK: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncapacity plan (%s)\n", res.Stats)
	fmt.Printf("%4s %6s %8s %6s %12s %12s %10s\n",
		"rank", "GPUs", "rate", "cap", "e2e-p95", "ttft-p95", "tok/s")
	for i, row := range res.Rows {
		fmt.Printf("%4d %6d %6.0f/s %6d %10.2fs %10.1fms %10.0f\n",
			i+1, row.Point.Map.TP, row.Point.Rate, row.Point.BatchCap,
			row.Metrics.Time, row.Metrics.TTFTP95*1e3, row.Metrics.TokensPerSec)
	}
	fmt.Println("\nPick the smallest deployment whose p95 E2E (and TTFT) meet your SLO")
	fmt.Println("at your traffic; tighter batch caps trade throughput for latency.")
}
