// Quickstart: predict one training iteration and one inference request
// with the Optimus-Go analytical model, and check both against the
// published measurements the paper validates with.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"optimus"
)

func main() {
	// --- Training: GPT-175B on 64 A100s, the paper's Table 1 row. ---
	gpt, err := optimus.ModelByName("gpt-175b")
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := optimus.NewSystem("a100", 64, "nvlink3", "hdr")
	if err != nil {
		log.Fatal(err)
	}
	trainRes, err := optimus.PredictTraining(optimus.TrainSpec{
		Model:  gpt,
		System: cluster,
		Map: optimus.Mapping{
			DP: 1, TP: 8, PP: 8,
			Microbatch: 1,
			Schedule:   optimus.OneFOneB,
		},
		GlobalBatch: 64,
		Seq:         2048,
		Precision:   optimus.BF16,
		Recompute:   optimus.FullRecompute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPT-175B training on 64 A100s (TP=8, PP=8, full recompute)\n")
	fmt.Printf("  predicted %.1f s/batch — Megatron-LM measured 18.1 s\n", trainRes.Total)
	fmt.Printf("  compute %.1f s, communication %.1f s, other %.1f s, MFU %.0f%%\n\n",
		trainRes.Compute, trainRes.Communication, trainRes.Other, 100*trainRes.MFU)

	// --- Inference: Llama2-13B on one A100, the paper's Table 2 row. ---
	llama, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		log.Fatal(err)
	}
	gpu, err := optimus.NewSystem("a100", 1, "nvlink3", "ndr")
	if err != nil {
		log.Fatal(err)
	}
	inferRes, err := optimus.PredictInference(optimus.InferSpec{
		Model:        llama,
		System:       gpu,
		TP:           1,
		Batch:        1,
		PromptTokens: 200,
		GenTokens:    200,
		Precision:    optimus.FP16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Llama2-13B inference on 1 A100 (B=1, 200+200 tokens)\n")
	fmt.Printf("  predicted %.0f ms — NVIDIA measured 3884 ms\n", inferRes.Total*1e3)
	fmt.Printf("  prefill %.0f ms, decode %.2f ms/token (memory-bound: weights stream at every step)\n",
		inferRes.Prefill*1e3, inferRes.PerToken*1e3)
}
