// Cluster-serving walks the multi-replica fleet simulator from a sanity
// anchor to an automatic capacity answer.
//
// Production deployments rarely serve a model from one instance: a router
// spreads a shared arrival stream over R replicas, and the operator's
// questions move up a level — which routing policy meets the SLO, how the
// fleet degrades as replicas are heterogeneous, and what arrival rate a
// given fleet can absorb before the tail latency knee. The cluster package
// answers those with the same determinism discipline as the single-instance
// simulator: one seeded arrival stream, replicas on real goroutines, and a
// merge that is byte-identical at any GOMAXPROCS.
//
// Step 1 anchors the model: a fleet of one replica reproduces the plain
// serving simulator byte for byte. Step 2 compares routing policies on a
// saturated homogeneous fleet — load-aware routing (least-queue) beats
// blind round-robin exactly when queues build. Step 3 makes the fleet
// heterogeneous (one big-batch replica, two small ones) where least-loaded
// routing earns its barrier. Step 4 asks the capacity question directly:
// FindClusterKnee bisects the arrival rate to the knee where fleet p95 E2E
// first exceeds the SLO, and step 5 hands fleet size and routing to the
// sweep engine as grid axes.
//
// Run with: go run ./examples/cluster-serving [model]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"optimus"
)

func main() {
	modelName := "llama2-13b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	cfg, err := optimus.ModelByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := optimus.NewSystem("h100", 1, "nvlink4", "ndr")
	if err != nil {
		log.Fatal(err)
	}
	capacity := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 1, Precision: optimus.FP16,
		Policy: optimus.PagedPolicy,
	}

	// --- Step 1: the degenerate anchor ------------------------------------
	// A fleet of one is the plain simulator; if these rows ever diverge,
	// the router or the merge broke.
	single := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 1, Precision: optimus.FP16,
		Policy:       optimus.PagedPolicy,
		PromptTokens: 200, GenTokens: 200,
		Arrival: optimus.PoissonArrivals, Rate: 2, Requests: 128, Seed: 1,
	}
	singleRes, err := optimus.Serve(single)
	if err != nil {
		log.Fatal(err)
	}
	fleet1 := optimus.ClusterSpec{
		Replicas:     []optimus.ClusterReplica{{Spec: capacity, Count: 1}},
		PromptTokens: 200, GenTokens: 200,
		Rate: 2, Requests: 128, Seed: 1,
	}
	fleet1Res, err := optimus.ServeCluster(fleet1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on 1 x H100 per replica, 200+200-token requests\n\n", cfg)
	fmt.Println("step 1: a fleet of one == the plain simulator, byte for byte")
	fmt.Printf("  %-14s e2e-p95 %.3fs  ttft-p95 %.3fs  tok/s %.0f\n",
		"serve.Run", singleRes.E2E.P95, singleRes.TTFT.P95, singleRes.TokensPerSec)
	fmt.Printf("  %-14s e2e-p95 %.3fs  ttft-p95 %.3fs  tok/s %.0f\n\n",
		"cluster R=1", fleet1Res.E2E.P95, fleet1Res.TTFT.P95, fleet1Res.TokensPerSec)

	// --- Step 2: routing policies on a saturated fleet --------------------
	// Three batch-capped replicas under a stream fast enough that queues
	// form. Round-robin splits arrivals blind; least-queue routes each to
	// the emptiest replica; least-kv to the replica with the most free KV
	// pages; tenant-affinity pins tenants (one tenant here, so it
	// degenerates to a single hot replica — the worst case on purpose).
	capped := capacity
	capped.MaxBatch = 4
	fmt.Println("step 2: routing a 3-replica fleet at 6 req/s (batch cap 4)")
	fmt.Printf("  %-18s %10s %10s %10s %10s\n", "routing", "e2e-p95", "queue-p95", "makespan", "tok/s")
	for _, rt := range []optimus.ClusterRouting{
		optimus.RoundRobinRouting, optimus.LeastQueueRouting,
		optimus.LeastKVRouting, optimus.TenantAffinityRouting,
	} {
		res, cerr := optimus.ServeCluster(optimus.ClusterSpec{
			Replicas:     []optimus.ClusterReplica{{Spec: capped, Count: 3}},
			Routing:      rt,
			PromptTokens: 200, GenTokens: 200,
			Rate: 6, Requests: 192, Seed: 1,
		})
		if cerr != nil {
			log.Fatal(cerr)
		}
		fmt.Printf("  %-18v %9.3fs %9.3fs %9.3fs %10.0f\n",
			rt, res.E2E.P95, res.Queue.P95, res.SimTime, res.TokensPerSec)
	}

	// --- Step 3: a heterogeneous fleet ------------------------------------
	// One replica with headroom (cap 8) next to two constrained ones (cap
	// 2): blind round-robin overloads the small replicas while load-aware
	// routing shifts the excess to the big one.
	big, small := capacity, capacity
	big.MaxBatch, small.MaxBatch = 8, 2
	fmt.Println("\nstep 3: heterogeneous capacity (1 big + 2 small replicas) at 6 req/s")
	fmt.Printf("  %-18s %10s %10s   per-replica assignments\n", "routing", "e2e-p95", "queue-p95")
	for _, rt := range []optimus.ClusterRouting{optimus.RoundRobinRouting, optimus.LeastQueueRouting} {
		res, cerr := optimus.ServeCluster(optimus.ClusterSpec{
			Replicas: []optimus.ClusterReplica{
				{Spec: big, Count: 1}, {Spec: small, Count: 2},
			},
			Routing:      rt,
			PromptTokens: 200, GenTokens: 200,
			Rate: 6, Requests: 192, Seed: 1,
		})
		if cerr != nil {
			log.Fatal(cerr)
		}
		caps := []int{big.MaxBatch, small.MaxBatch}
		fmt.Printf("  %-18v %9.3fs %9.3fs   ", rt, res.E2E.P95, res.Queue.P95)
		for _, rr := range res.PerReplica {
			fmt.Printf("r%d(cap%d)=%d ", rr.Index, caps[rr.Descriptor], rr.Assigned)
		}
		fmt.Println()
	}

	// --- Step 4: the saturation knee --------------------------------------
	// The capacity question an operator actually asks: how fast can this
	// fleet go before p95 E2E crosses the SLO? FindClusterKnee bisects the
	// arrival rate; the probe transcript is deterministic and cheap enough
	// to rerun in CI.
	slo := 8.0
	knee, err := optimus.FindClusterKnee(optimus.ClusterKneeSpec{
		Cluster: optimus.ClusterSpec{
			Replicas:     []optimus.ClusterReplica{{Spec: capped, Count: 3}},
			Routing:      optimus.LeastQueueRouting,
			PromptTokens: 200, GenTokens: 200,
			Requests: 192, Seed: 1,
		},
		SLOE2EP95: slo, MinRate: 0.5, MaxRate: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstep 4: bisecting the saturation knee against a %.0fs p95-E2E SLO\n", slo)
	if knee.Saturated {
		fmt.Printf("  knee at %.3g req/s (p95 %.3fs); first violation at %.3g req/s (p95 %.3fs)\n",
			knee.Rate, knee.P95E2E, knee.LimitRate, knee.LimitP95)
	} else {
		fmt.Printf("  unsaturated through %.3g req/s (p95 %.3fs)\n", knee.Rate, knee.P95E2E)
	}
	fmt.Printf("  %d probes: ", len(knee.Probes))
	for _, p := range knee.Probes {
		fmt.Printf("%.3g→%.2fs ", p.Rate, p.P95E2E)
	}
	fmt.Println()

	// --- Step 5: fleet size and routing as sweep axes ---------------------
	// The same grid machinery that ranks policies and pool splits ranks
	// fleets: Replicas=0 is the single-instance baseline, and the routing
	// axis collapses to round-robin for fleets of one (identical behavior,
	// one memo key).
	fmt.Println("\nstep 5: fleet size and routing as grid axes (ranked by p95 E2E)")
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload:  optimus.ServingSweep,
		Models:    []optimus.Model{cfg},
		Systems:   []*optimus.System{sys},
		Rates:     []float64{6},
		BatchCaps: []int{4},
		Replicas:  []int{0, 2, 3},
		Routings: []optimus.ClusterRouting{
			optimus.RoundRobinRouting, optimus.LeastQueueRouting,
		},
		Seqs:          []int{200},
		GenTokens:     []int{200},
		ServeRequests: 96,
		Constraints:   optimus.PlanConstraints{TopK: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", res.Stats)
	for i, row := range res.Rows {
		p := row.Point
		fleet := "single instance"
		if p.Replicas > 0 {
			fleet = fmt.Sprintf("R=%d %v", p.Replicas, p.Routing)
		}
		fmt.Printf("  %2d. %-22s e2e-p95 %7.3fs  ttft-p95 %7.3fs  tok/s %6.0f\n",
			i+1, fleet, row.Metrics.Time, row.Metrics.TTFTP95, row.Metrics.TokensPerSec)
	}
}
