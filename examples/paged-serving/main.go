// Paged-serving walks the KV-cache admission policies of the serving
// simulator from a single constrained deployment to a policy-aware
// capacity plan.
//
// The paper's inference model prices decode steps linearly in KV length,
// but a request only *holds* KV for the tokens it has produced so far —
// reserving the full prompt+generation context at admission (the
// ReserveFull policy) is wildly pessimistic for long generations. The
// Paged policy allocates vLLM-style fixed-size token blocks that grow as
// a request decodes, admits on the prompt's pages alone, and preempts the
// youngest running sequence (recompute on readmission) when the pool runs
// dry.
//
// Step 1 runs both policies on one memory-constrained deployment and
// shows the trade directly: paged admission batches more sequences and
// lifts throughput, paid for with preemptions and recomputed tokens.
// Step 2 sweeps the page size to show the allocation-granularity knob.
// Step 3 hands the question to the sweep engine with the admission policy
// as a grid axis, ranking reserve-vs-paged per arrival rate in one grid —
// the capacity-planning comparison RAPID-LLM argues flips conclusions.
//
// Run with: go run ./examples/paged-serving [model]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"optimus"
)

func main() {
	modelName := "llama2-13b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	cfg, err := optimus.ModelByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := optimus.NewSystem("a100", 1, "nvlink3", "ndr")
	if err != nil {
		log.Fatal(err)
	}

	// A long-generation workload on a deliberately tight KV partition —
	// as when weights, activations and other tenants crowd the device —
	// so admission policy, not arithmetic, decides capacity. The KV
	// budget holds about eight full 100+400-token contexts.
	base := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 1, Precision: optimus.FP16,
		PromptTokens: 100, GenTokens: 400,
		Arrival: optimus.PoissonArrivals, Rate: 4,
		Requests: 256, Seed: 1,
	}
	probe, err := optimus.Serve(base)
	if err != nil {
		log.Fatal(err)
	}
	perRequest := probe.PeakKVBytes / float64(probe.PeakBatch)
	base.KVCapacity = 8 * perRequest

	// --- Step 1: one deployment, two admission policies ------------------
	fmt.Printf("%s on 1 x A100, 100+400-token requests, %.0f req/s Poisson,\n", cfg, base.Rate)
	fmt.Printf("KV budget = 8 full contexts (%.1f GB)\n\n", base.KVCapacity/1e9)
	fmt.Printf("%-14s %6s %8s %8s %9s %10s %10s %8s\n",
		"policy", "batch", "kv-util", "preempt", "recomp", "ttft-p95", "e2e-p95", "tok/s")
	for _, c := range []struct {
		name string
		spec func(optimus.ServeSpec) optimus.ServeSpec
	}{
		{"reserve-full", func(s optimus.ServeSpec) optimus.ServeSpec { return s }},
		{"paged/16", func(s optimus.ServeSpec) optimus.ServeSpec {
			s.Policy = optimus.PagedPolicy
			return s
		}},
		{"paged-safe/16", func(s optimus.ServeSpec) optimus.ServeSpec {
			s.Policy = optimus.PagedPolicy
			s.NoPreempt = true
			return s
		}},
	} {
		res, serr := optimus.Serve(c.spec(base))
		if serr != nil {
			log.Fatal(serr)
		}
		fmt.Printf("%-14s %6d %7.0f%% %8d %9d %9.2fs %9.2fs %8.0f\n",
			c.name, res.PeakBatch, 100*res.MeanKVUtil, res.Preemptions,
			res.RecomputedTokens, res.TTFT.P95, res.E2E.P95, res.TokensPerSec)
	}
	fmt.Println("\nReservation admits only what the *final* context would need, so the")
	fmt.Println("pool idles while requests queue. Paged admission fills the pool with")
	fmt.Println("growing sequences and converts the headroom into throughput; the cost")
	fmt.Println("is preemptions whose discarded KV a readmission prefill must rebuild.")
	fmt.Println("Disabling preemption (paged-safe) reserves full-context pages instead —")
	fmt.Println("reservation at page granularity.")

	// --- Step 2: the allocation-granularity knob -------------------------
	fmt.Printf("\npage-size sensitivity at the same load:\n")
	fmt.Printf("%-12s %8s %8s %8s %10s\n", "page-tokens", "pages", "kv-util", "preempt", "e2e-p95")
	for _, pt := range []int{8, 16, 64, 500} {
		s := base
		s.Policy = optimus.PagedPolicy
		s.PageTokens = pt
		res, serr := optimus.Serve(s)
		if serr != nil {
			log.Fatal(serr)
		}
		fmt.Printf("%-12d %8d %7.0f%% %8d %9.2fs\n",
			res.PageTokens, res.KVPagesTotal, 100*res.MeanKVUtil,
			res.Preemptions, res.E2E.P95)
	}
	fmt.Println("\nSmall pages track each sequence's true footprint (high utilization);")
	fmt.Println("a page spanning the whole context degenerates to reservation — the")
	fmt.Println("equivalence the test suite pins byte for byte.")

	// --- Step 3: the policy as a sweep axis ------------------------------
	// Very long generations make the device's own KV budget the binding
	// constraint (a 100+1500-token context reserves gigabytes), so the
	// admission policy — not the batch cap — decides each candidate's
	// capacity.
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload:      optimus.ServingSweep,
		Models:        []optimus.Model{cfg},
		Systems:       []*optimus.System{sys},
		Seqs:          []int{100},
		GenTokens:     []int{1500},
		Rates:         []float64{0.25, 0.5, 1},
		Policies:      []optimus.ServePolicy{optimus.ReserveFullPolicy, optimus.PagedPolicy},
		ServeRequests: 96,
		Constraints:   optimus.PlanConstraints{TopK: 6},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsweep: reserve vs paged per arrival rate, 100+1500-token requests,\n")
	fmt.Printf("ranked by p95 E2E\n")
	fmt.Printf("%4s %-14s %7s %10s %10s %8s %8s\n", "rank", "policy", "rate", "e2e-p95", "ttft-p95", "tok/s", "preempt")
	for i, row := range res.Rows {
		name := row.Point.Policy.String()
		if row.Point.Policy == optimus.PagedPolicy {
			name = fmt.Sprintf("paged/%d", row.Point.PageTokens)
		}
		fmt.Printf("%4d %-14s %5.2f/s %9.2fs %9.3fs %8.0f %8d\n",
			i+1, name, row.Point.Rate, row.Metrics.Time,
			row.Metrics.TTFTP95, row.Metrics.TokensPerSec, row.Metrics.Preemptions)
	}
	fmt.Println("\nOne grid, one ranking: the admission policy is just another axis, so")
	fmt.Println("capacity studies can ask \"does paging change the answer?\" per rate —")
	fmt.Println("`optimus sweep -workload serve -policies reserve,paged` from the CLI.")
}
