// Multi-tenant-serving walks the per-request workload model of the
// serving simulator: requests carry their own tenant and prompt/generation
// lengths instead of one spec-wide shape, the gap the paper's Table 2
// methodology (every request is 200+200) leaves open and that the
// length-distribution studies of arXiv:2507.14392 show actually drives
// batching behavior.
//
// Step 1 serves a chat+batch mix — short interactive requests sharing the
// engine with long-prompt summarization jobs — and reads the per-tenant
// SLO breakdown: the batch tenant pays its long prefill in TTFT, and the
// chat tenant inherits queueing delay from sharing the batch with it.
// Step 2 compares admission policies on the same mix: paged admission
// stops charging small chat requests the reservation of the largest
// context, so the blended workload batches deeper.
// Step 3 replays an explicit trace (the CSV shape `optimus serve -trace`
// reads) for when real arrival logs are available.
// Step 4 hands the question to the sweep engine with the mix as a grid
// axis, ranking a chat-only baseline against the blend per arrival rate.
//
// Run with: go run ./examples/multi-tenant-serving [model]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"optimus"
)

func main() {
	modelName := "llama2-13b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	cfg, err := optimus.ModelByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := optimus.NewSystem("h100", 1, "nvlink4", "ndr")
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: a 70/30 chat+batch blend. Shares are arrival-rate weights;
	// each tenant keeps its own request shape.
	mix := []optimus.ServeTenantLoad{
		{Tenant: "chat", Share: 0.7, PromptTokens: 200, GenTokens: 200},
		{Tenant: "batch", Share: 0.3, PromptTokens: 1500, GenTokens: 100},
	}
	base := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 1, Precision: optimus.FP16,
		Mix:     mix,
		Arrival: optimus.PoissonArrivals, Rate: 3,
		Requests: 256, Seed: 1,
	}
	res, err := optimus.Serve(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s, mix %s at %g req/s ==\n", cfg.Name, optimus.FormatServeMix(mix), base.Rate)
	fmt.Printf("aggregate: p95 e2e %.2f s, p95 ttft %.0f ms, %.0f tok/s\n",
		res.E2E.P95, res.TTFT.P95*1e3, res.TokensPerSec)
	for _, tm := range res.PerTenant {
		fmt.Printf("  %-6s %3d requests: p95 ttft %7.0f ms, p95 tpot %5.1f ms, p95 e2e %6.2f s\n",
			tm.Tenant, tm.Requests, tm.TTFT.P95*1e3, tm.TPOT.P95*1e3, tm.E2E.P95)
	}

	// Step 2: the same blend under paged admission on a tight KV
	// partition. Reservation charges every chat request the full context
	// of the largest batch job it might become — per-request page math
	// admits on what each request actually needs.
	constrained := base
	constrained.Rate = 8
	constrained.KVCapacity = 6e9
	reserve, err := optimus.Serve(constrained)
	if err != nil {
		log.Fatal(err)
	}
	constrained.Policy = optimus.PagedPolicy
	paged, err := optimus.Serve(constrained)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== constrained KV partition (%g GB), reserve vs paged ==\n",
		constrained.KVCapacity/1e9)
	fmt.Printf("reserve: peak batch %3d, %6.2f req/s, p95 e2e %.2f s\n",
		reserve.PeakBatch, reserve.ThroughputRPS, reserve.E2E.P95)
	fmt.Printf("paged:   peak batch %3d, %6.2f req/s, p95 e2e %.2f s (%d preemptions)\n",
		paged.PeakBatch, paged.ThroughputRPS, paged.E2E.P95, paged.Preemptions)

	// Step 3: replay an explicit trace — the programmatic form of
	// `optimus serve -trace arrivals.csv`.
	trace := []optimus.ServeTraceEvent{
		{Arrival: 0.0, Request: optimus.ServeRequest{Tenant: "chat", PromptTokens: 180, GenTokens: 120}},
		{Arrival: 0.1, Request: optimus.ServeRequest{Tenant: "batch", PromptTokens: 1200, GenTokens: 90}},
		{Arrival: 0.4, Request: optimus.ServeRequest{Tenant: "chat", PromptTokens: 220, GenTokens: 160}},
		{Arrival: 0.9, Request: optimus.ServeRequest{Tenant: "chat", PromptTokens: 150, GenTokens: 80}},
	}
	replay, err := optimus.Serve(optimus.ServeSpec{
		Model: cfg, System: sys, TP: 1, Precision: optimus.FP16,
		Trace: trace,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== %d-event trace replay ==\n", len(trace))
	for _, m := range replay.PerRequest {
		fmt.Printf("  t=%.1f s %-6s %4d+%-3d tokens: ttft %6.0f ms, e2e %5.2f s\n",
			m.Arrival, m.Tenant, m.PromptTokens, m.GenTokens, m.TTFT*1e3, m.E2E)
	}

	// Step 4: the mix as a sweep axis — one grid ranks the chat-only
	// baseline against the blend per arrival rate, per-tenant SLOs kept.
	sweepRes, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload: optimus.ServingSweep,
		Models:   []optimus.Model{cfg},
		Systems:  []*optimus.System{sys},
		Rates:    []float64{2, 4},
		Mixes: [][]optimus.ServeTenantLoad{
			{{Tenant: "chat", Share: 1, PromptTokens: 200, GenTokens: 200}},
			mix,
		},
		ServeRequests: 128,
		Constraints:   optimus.PlanConstraints{TopK: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== mix as a sweep axis (%s) ==\n", sweepRes.Stats)
	for i, row := range sweepRes.Rows {
		label := "chat-only"
		if len(row.Point.Mix) > 1 {
			label = "chat+batch"
		}
		fmt.Printf("%d. rate %g/s %-10s p95 e2e %6.2f s", i+1, row.Point.Rate, label, row.Metrics.Time)
		for _, slo := range row.Metrics.PerTenant {
			fmt.Printf("  [%s p95 %.2f s]", slo.Tenant, slo.E2EP95)
		}
		fmt.Println()
	}
}
