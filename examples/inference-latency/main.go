// Inference-latency reproduces the paper's §4.3/§6 inference analysis with
// the public API: strong scaling of Llama-2 models from 1 to 8 GPUs on
// A100 and H100, the per-GEMM bound table, and why decode scaling stalls.
//
// Run with: go run ./examples/inference-latency
package main

import (
	"fmt"
	"log"

	"optimus"
)

func main() {
	for _, modelName := range []string{"llama2-7b", "llama2-13b", "llama2-70b"} {
		cfg, err := optimus.ModelByName(modelName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (B=1, 200 prompt + 200 generated tokens)\n", cfg)
		fmt.Printf("  %-6s %6s %14s %14s %12s %12s\n",
			"device", "GPUs", "latency (ms)", "per-token", "memory (ms)", "comm (ms)")
		for _, dev := range []struct {
			name  string
			intra string
		}{{"a100", "nvlink3"}, {"h100", "nvlink4"}} {
			for _, gpus := range []int{1, 2, 4, 8} {
				sys, err := optimus.NewSystem(dev.name, gpus, dev.intra, "ndr")
				if err != nil {
					log.Fatal(err)
				}
				res, err := optimus.PredictInference(optimus.InferSpec{
					Model: cfg, System: sys, TP: gpus, Batch: 1,
					PromptTokens: 200, GenTokens: 200, Precision: optimus.FP16,
				})
				if err != nil {
					log.Fatal(err)
				}
				if !res.Fits {
					fmt.Printf("  %-6s %6d   does not fit (%0.f GB of weights per device)\n",
						dev.name, gpus, res.Footprint.Weights/1e9)
					continue
				}
				fmt.Printf("  %-6s %6d %14.0f %11.2fms %12.0f %12.0f\n",
					dev.name, gpus, res.Total*1e3, res.PerToken*1e3,
					res.MemoryTime*1e3, res.CommTime*1e3)
			}
		}
		fmt.Println()
	}

	// The per-GEMM view explains the scaling: decode kernels stream the
	// weights (memory-bound), and the per-layer all-reduces are latency-
	// bound, so more GPUs trade memory time for communication time.
	cfg, _ := optimus.ModelByName("llama2-13b")
	for _, dev := range []struct {
		name  string
		intra string
	}{{"a100", "nvlink3"}, {"h100", "nvlink4"}} {
		sys, err := optimus.NewSystem(dev.name, 1, dev.intra, "ndr")
		if err != nil {
			log.Fatal(err)
		}
		rows, err := optimus.PrefillGEMMTable(optimus.InferSpec{
			Model: cfg, System: sys, TP: 1, Batch: 1,
			PromptTokens: 200, GenTokens: 1, Precision: optimus.FP16,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Llama2-13B prefill GEMMs on %s (Table 4):\n", sys.Device.Name)
		for _, r := range rows {
			fmt.Printf("  %-30s %8.1f µs  %s\n", r.Function, r.Time*1e6, r.Bound)
		}
		fmt.Println()
	}
	fmt.Println("On A100 the projection/MLP GEMMs are compute-bound; on H100 every")
	fmt.Println("large GEMM flips to memory-bound — compute grew 3.2x, DRAM only 1.7x (§6.1).")
}
