// Serving-planner sizes an inference deployment with the step-cost
// engine: decompose a request into its prefill pass and per-token decode
// steps (optimus.PrefillCost / optimus.DecodeStepCost — the one decode-cost
// path everything shares), sweep the §6.1 batch/latency frontier across GPU
// counts, check KV-cache fit, and price each option per million generated
// tokens using the energy/TCO extension.
//
// Run with: go run ./examples/serving-planner [model]
package main

import (
	"fmt"
	"log"
	"os"

	"optimus"
	"optimus/internal/infer"
)

func main() {
	modelName := "llama2-13b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	cfg, err := optimus.ModelByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	prices := optimus.DefaultPrices()

	fmt.Printf("serving plan for %s (200-token prompts, 200-token answers, H100)\n\n", cfg)
	fmt.Printf("%4s %6s %12s %14s %14s %12s %14s\n",
		"GPUs", "batch", "latency", "tok/s", "tok/s/GPU", "$/Mtok", "fits")

	for _, gpus := range []int{1, 2, 4, 8} {
		sys, err := optimus.NewSystem("h100", gpus, "nvlink4", "ndr")
		if err != nil {
			log.Fatal(err)
		}
		base := optimus.InferSpec{
			Model: cfg, System: sys, TP: gpus, Batch: 1,
			PromptTokens: 200, GenTokens: 200, Precision: optimus.FP16,
		}
		if fp := base.Model.Params() * 2 / float64(gpus); fp > sys.Device.DRAMCapacity() {
			fmt.Printf("%4d      —  model does not fit (%.0f GB weights per GPU)\n",
				gpus, fp/1e9)
			continue
		}

		// The per-step anatomy at batch 1: the prefill pass that emits the
		// first token, and the first/last decode steps whose spread is the
		// KV-cache growth tax.
		pre, err := optimus.PrefillCost(base)
		if err != nil {
			log.Fatal(err)
		}
		first, err := optimus.DecodeStepCost(base, base.PromptTokens+1, 1)
		if err != nil {
			log.Fatal(err)
		}
		last, err := optimus.DecodeStepCost(base, base.PromptTokens+base.GenTokens, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d   steps: prefill %.1fms (%.1fms comm), decode %.2f→%.2fms/token\n",
			gpus, pre.Time()*1e3, pre.Comm*1e3, first.Time()*1e3, last.Time()*1e3)

		pts, err := infer.ThroughputSweep(base, []int{1, 8, 32})
		if err != nil {
			log.Fatal(err)
		}
		for _, pt := range pts {
			spec := base
			spec.Batch = pt.Batch
			res, err := optimus.PredictInference(spec)
			if err != nil {
				log.Fatal(err)
			}
			// $ per million generated tokens: device-hours plus energy
			// for the request, scaled by tokens served.
			rep, err := optimus.InferenceEnergy(spec, res)
			if err != nil {
				log.Fatal(err)
			}
			cost := res.Total/3600*float64(gpus)*prices.GPUHourUSD +
				rep.SystemJ/3.6e6*prices.PUE*prices.USDPerKWh
			tokens := float64(pt.Batch * 200)
			perM := cost / tokens * 1e6
			fits := "yes"
			if !pt.Fits {
				fits = "NO (kv-cache)"
			}
			fmt.Printf("%4d %6d %10.0fms %14.0f %14.0f %11.2f %14s\n",
				gpus, pt.Batch, pt.Latency*1e3, pt.TokensPerSec,
				pt.TokensPerSec/float64(gpus), perM, fits)
		}
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  * Throughput grows almost linearly with batch while latency creeps —")
	fmt.Println("    decode streams the same weights regardless of batch size (§6.1).")
	fmt.Println("  * Per-GPU efficiency drops with TP degree: the per-layer all-reduces")
	fmt.Println("    are latency-bound and amortize over nothing (§6.2).")
	fmt.Println("  * The cheapest $/Mtok sits at the largest batch that still fits the")
	fmt.Println("    KV-cache and meets your latency target.")
	fmt.Println("  * For SLO percentiles under live traffic, run the continuous-batching")
	fmt.Println("    simulator on the same step costs: examples/serving-capacity.")
}
