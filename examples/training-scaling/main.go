// Training-scaling walks the paper's §5.2 study with the public API:
// project GPT-175B training across GPU generations (A100 → H100 → H200 →
// B200) and fabrics (HDR/NDR InfiniBand vs the NVLink Switch System),
// showing where each generation's gain comes from.
//
// Run with: go run ./examples/training-scaling
package main

import (
	"fmt"
	"log"

	"optimus"
)

// platform is one projection target.
type platform struct {
	name      string
	device    string
	intra     string
	inter     string
	precision optimus.Precision
	batch     int
}

func main() {
	gpt, err := optimus.ModelByName("gpt-175b")
	if err != nil {
		log.Fatal(err)
	}

	platforms := []platform{
		{"A100 + HDR IB", "a100", "nvlink3", "hdr", optimus.BF16, 1024},
		{"H100 + NDR IB", "h100", "nvlink4", "ndr", optimus.FP8, 1024},
		{"H100 + NVLink switch", "h100", "nvlink4", "nvs", optimus.FP8, 1024},
		{"H200 + NVS, batch 4096", "h200", "nvlink4", "nvs", optimus.FP8, 4096},
		{"B200 + NDR IB", "b200", "nvlink5", "ndr", optimus.FP4, 1024},
		{"B200 + NVS", "b200", "nvlink5", "nvs-b", optimus.FP4, 1024},
		{"B200 + NVS, batch 4096", "b200", "nvlink5", "nvs-b", optimus.FP4, 4096},
	}

	const gpus = 8192
	fmt.Printf("GPT-175B training projection on %d GPUs (DP=128, TP=8, PP=8, SP, selective recompute)\n\n", gpus)
	fmt.Printf("%-24s %9s %14s %10s %10s %8s %6s\n",
		"platform", "batch", "s/batch", "compute", "comm", "other", "MFU")

	var baseline float64
	for i, p := range platforms {
		sys, err := optimus.NewSystem(p.device, gpus, p.intra, p.inter)
		if err != nil {
			log.Fatal(err)
		}
		res, err := optimus.PredictTraining(optimus.TrainSpec{
			Model:  gpt,
			System: sys,
			Map: optimus.Mapping{
				DP: 128, TP: 8, PP: 8, SP: true,
				Microbatch: 1, Schedule: optimus.OneFOneB,
			},
			GlobalBatch: p.batch,
			Seq:         2048,
			Precision:   p.precision,
			Recompute:   optimus.SelectiveRecompute,
		})
		if err != nil {
			log.Fatal(err)
		}
		perSample := res.Total / float64(p.batch)
		if i == 0 {
			baseline = perSample
		}
		fmt.Printf("%-24s %9d %10.2f (%4.1fx) %9.1f%% %9.1f%% %7.1f%% %5.0f%%\n",
			p.name, p.batch, res.Total, baseline/perSample,
			100*res.Compute/res.Total, 100*res.Communication/res.Total,
			100*res.Other/res.Total, 100*res.MFU)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  * Hopper's FP8 engine triples effective math throughput over A100 BF16;")
	fmt.Println("    Blackwell's FP4 doubles it again (paper §5.2).")
	fmt.Println("  * On InfiniBand, the data-parallel gradient all-reduce dominates communication;")
	fmt.Println("    the NVLink Switch system collapses it.")
	fmt.Println("  * Larger batches amortize the pipeline bubble and the optimizer step ('other').")
}
