// Plan sweep: rank a whole experiment grid — two models, two cluster
// generations, two global batch sizes — with the concurrent sweep engine,
// then answer a serving question with an inference sweep over the same
// API. This is the paper's §5.1 planning capability scaled from one
// (model, system) pair to a cross product.
//
// Run with: go run ./examples/plan-sweep
package main

import (
	"context"
	"fmt"
	"log"

	"optimus"
)

func main() {
	gpt175b, err := optimus.ModelByName("gpt-175b")
	if err != nil {
		log.Fatal(err)
	}
	gpt530b, err := optimus.ModelByName("gpt-530b")
	if err != nil {
		log.Fatal(err)
	}
	a100s, err := optimus.NewSystem("a100", 128, "nvlink3", "hdr")
	if err != nil {
		log.Fatal(err)
	}
	h100s, err := optimus.NewSystem("h100", 128, "nvlink4", "ndr")
	if err != nil {
		log.Fatal(err)
	}

	// --- Training: which (cluster, strategy) trains each model fastest? ---
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Models:        []optimus.Model{gpt175b, gpt530b},
		Systems:       []*optimus.System{a100s, h100s},
		GlobalBatches: []int{128, 256},
		Precisions:    []optimus.Precision{optimus.BF16},
		Constraints:   optimus.PlanConstraints{TopK: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training sweep — %s\n", res.Stats)
	for i, row := range res.Rows {
		fmt.Printf("  %d. %-9s on %-10s batch %3d  %s mb%d %-9v  %6.1f s/batch  MFU %2.0f%%\n",
			i+1, row.Point.Model.Name, row.Point.System.Device.Name,
			row.Point.GlobalBatch, row.Point.Map, row.Point.Map.Microbatch,
			row.Point.Recompute, row.Metrics.Time, 100*row.Metrics.MFU)
	}

	// --- Inference: how do serving latencies compare across node sizes? ---
	llama, err := optimus.ModelByName("llama2-70b")
	if err != nil {
		log.Fatal(err)
	}
	var servers []*optimus.System
	for _, gpus := range []int{2, 4, 8} {
		sys, serr := optimus.NewSystem("h100", gpus, "nvlink4", "ndr")
		if serr != nil {
			log.Fatal(serr)
		}
		servers = append(servers, sys)
	}
	inf, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload:      optimus.InferenceSweep,
		Models:        []optimus.Model{llama},
		Systems:       servers,
		GlobalBatches: []int{1, 8},
		Seqs:          []int{200},
		GenTokens:     []int{200},
		Constraints:   optimus.PlanConstraints{TopK: 6, AllowOverflow: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninference sweep — %s\n", inf.Stats)
	for i, row := range inf.Rows {
		fits := "fits"
		if !row.Metrics.Fits {
			fits = "OVERFLOWS"
		}
		fmt.Printf("  %d. %s x%d  B=%d  %6.2f s/request  (%s, %.0f GB)\n",
			i+1, row.Point.System.Device.Name, row.Point.Map.TP,
			row.Point.GlobalBatch, row.Metrics.Time, fits,
			row.Metrics.Footprint.Total()/1e9)
	}
}
