// Memory-planner uses the §3.3/§5.1 footprint model as a practical tool:
// given a model and a device budget, enumerate parallelization mappings
// and report which fit, with their per-device memory dissection — the
// question the paper's Fig. 4 answers for three GPTs.
//
// Run with: go run ./examples/memory-planner [model] [capacityGB]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"optimus"
)

func main() {
	modelName := "gpt-530b"
	capacity := 80e9
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	if len(os.Args) > 2 {
		gb, err := strconv.ParseFloat(os.Args[2], 64)
		if err != nil {
			log.Fatalf("bad capacity %q: %v", os.Args[2], err)
		}
		capacity = gb * 1e9
	}

	cfg, err := optimus.ModelByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planning %s against %.0f GB devices (seq 2048, microbatch 1)\n\n", cfg, capacity/1e9)
	fmt.Printf("%-22s %-10s %8s %8s %8s %8s %6s %8s\n",
		"mapping (DP-TP-PP-SP)", "recompute", "param", "grad", "optim", "act", "GBs", "fits")

	regimes := []optimus.Recompute{optimus.NoRecompute, optimus.SelectiveRecompute, optimus.FullRecompute}
	found := 0
	for _, tp := range []int{4, 8} {
		for _, pp := range []int{1, 5, 7, 15, 21, 35, 105} {
			if cfg.Layers%pp != 0 {
				continue
			}
			m := optimus.Mapping{DP: 1, TP: tp, PP: pp, SP: true, Microbatch: 1, Schedule: optimus.OneFOneB}
			batch := 4 * pp // enough microbatches to keep the pipeline busy
			for _, r := range regimes {
				bd, err := optimus.TrainingMemory(optimus.MemorySpec{
					Model: cfg, Map: m, Seq: 2048, GlobalBatch: batch, Recompute: r,
				})
				if err != nil {
					continue
				}
				fits := optimus.FitsDevice(bd, capacity)
				if !fits && r != optimus.NoRecompute {
					continue // only print the no-recompute row of failing mappings
				}
				mark := "no"
				if fits {
					mark = "yes"
					found++
				}
				fmt.Printf("%-22s %-10s %7.1fG %7.1fG %7.1fG %7.1fG %5.0fG %8s\n",
					m.String(), r, bd.Parameters/1e9, bd.Gradients/1e9,
					bd.Optimizer/1e9, bd.Activations/1e9, bd.Total()/1e9, mark)
			}
		}
	}
	if found == 0 {
		fmt.Println("\nno mapping fits — increase TP/PP degrees or the device capacity")
		return
	}
	fmt.Printf("\n%d feasible (mapping, recompute) combinations; prefer selective recomputation\n", found)
	fmt.Println("where it fits: it frees the attention quadratic at ~no compute cost (§3.3).")
}
