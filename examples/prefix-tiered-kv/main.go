// Prefix-tiered-kv walks the two KV-reuse mechanisms of the paged
// admission policy: prefix caching (shared system prompts pay their KV
// and prefill once) and the tiered host offload (preempted KV spills to
// host memory over a PCIe-class link instead of being recomputed).
//
// Step 1 grows a shared system prompt from nothing to most of the
// prompt: every request after the first hits the resident prefix, so
// admission charges pages only for the non-shared suffix and prefill
// skips the shared fraction — hit counts, saved prefill tokens and the
// TTFT they buy, straight off the result.
// Step 2 squeezes the KV budget until paged admission preempts, then
// sweeps the host tier's swap-link bandwidth. Readmission prices
// swap-in against recomputing the lost tokens and takes the cheaper
// path, so a slow link degenerates to recompute (zero swap-ins) and a
// fast one makes preemption nearly free — the crossover is the point of
// the tier.
// Step 3 hands both knobs to the sweep engine as grid axes, ranking
// uncached/cached × tierless/tiered paged serving against full
// reservation in one deterministic grid.
//
// Run with: go run ./examples/prefix-tiered-kv [model]
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"optimus"
)

func main() {
	modelName := "llama2-13b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	cfg, err := optimus.ModelByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := optimus.NewSystem("a100", 1, "nvlink3", "ndr")
	if err != nil {
		log.Fatal(err)
	}

	// A chat-like workload: a 512-token prompt whose leading tokens are a
	// system prompt every request shares, plus a 128-token answer.
	base := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 1, Precision: optimus.FP16,
		PromptTokens: 512, GenTokens: 128,
		Arrival: optimus.PoissonArrivals, Rate: 4,
		Requests: 256, Seed: 1,
		Policy: optimus.PagedPolicy,
	}

	// --- Step 1: the shared prefix pays prefill once ---------------------
	fmt.Printf("%s on 1 x A100, 512+128-token requests, %.0f req/s Poisson\n\n", cfg, base.Rate)
	fmt.Println("step 1: growing the shared system prompt (paged admission)")
	fmt.Printf("  %-8s %6s %12s %10s %10s %8s\n",
		"prefix", "hits", "saved-toks", "ttft-p95", "e2e-p95", "tok/s")
	for _, pfx := range []int{0, 64, 256, 448} {
		s := base
		s.PrefixTokens = pfx
		res, serr := optimus.Serve(s)
		if serr != nil {
			log.Fatal(serr)
		}
		fmt.Printf("  %-8d %6d %12d %9.3fs %9.3fs %8.0f\n",
			pfx, res.PrefixHits, res.PrefixSavedTokens,
			res.TTFT.P95, res.E2E.P95, res.TokensPerSec)
	}
	fmt.Println("\nOnly the first request prefills the shared tokens; every later one")
	fmt.Println("hits the resident prefix, charges pages for its suffix alone, and")
	fmt.Println("skips the shared fraction of prefill — TTFT drops with prefix length")
	fmt.Println("while the answer-side decode cost stays put.")

	// --- Step 2: the host tier's swap-in vs recompute crossover ----------
	// Squeeze the GPU KV budget to six full contexts so paged admission
	// preempts, then give the victims a host tier to spill into. The
	// readmission path compares the priced swap-in against recomputing
	// the discarded tokens and takes the cheaper one.
	probe, err := optimus.Serve(base)
	if err != nil {
		log.Fatal(err)
	}
	perContext := probe.PeakKVBytes / float64(probe.PeakBatch)
	pressured := base
	pressured.Rate = 6
	pressured.KVCapacity = 6 * perContext
	pressured.HostKVBytes = 32 * perContext

	fmt.Println("\nstep 2: KV budget of 6 contexts, host tier of 32, per link speed")
	fmt.Printf("  %-10s %8s %9s %9s %9s %10s %10s\n",
		"link", "preempt", "swap-out", "swap-in", "recomp", "swapping", "e2e-p95")
	for _, gbps := range []float64{0, 1, 8, 32, math.Inf(1)} {
		s := pressured
		s.SwapGBps = gbps
		label := fmt.Sprintf("%g GB/s", gbps)
		switch {
		case gbps == 0:
			s.HostKVBytes = 0 // no tier at all: the recompute baseline
			label = "no tier"
		case math.IsInf(gbps, 1):
			label = "free"
		}
		res, serr := optimus.Serve(s)
		if serr != nil {
			log.Fatal(serr)
		}
		fmt.Printf("  %-10s %8d %9d %9d %9d %9.3fs %9.3fs\n",
			label, res.Preemptions, res.KVSwapOuts, res.KVSwapIns,
			res.RecomputedTokens, res.SwapTimeTotal, res.E2E.P95)
	}
	fmt.Println("\nA slow link loses the readmission price comparison, so victims still")
	fmt.Println("recompute — and the eager swap-out makes it *worse* than no tier at")
	fmt.Println("all. Past the crossover the swap-in wins, recomputed tokens go to")
	fmt.Println("zero, and preemption turns from lost prefill work into a bounded")
	fmt.Println("PCIe transfer.")

	// --- Step 3: the prefix length as a sweep axis -----------------------
	// How much shared prompt does it take for paged serving to pull away
	// at planning time? One grid ranks uncached and cached paged serving
	// against full reservation per arrival rate. (The sweep layer sizes
	// KV from the device, so the host tier is a serve/cluster-level knob
	// — step 2's pressured budget — not a grid axis here.)
	fmt.Println("\nstep 3: the prefix length as a grid axis (ranked by p95 E2E)")
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload: optimus.ServingSweep,
		Models:   []optimus.Model{cfg},
		Systems:  []*optimus.System{sys},
		Rates:    []float64{4, 8},
		Policies: []optimus.ServePolicy{
			optimus.ReserveFullPolicy, optimus.PagedPolicy,
		},
		PrefixTokens:  []int{0, 256, 448},
		Seqs:          []int{512},
		GenTokens:     []int{128},
		ServeRequests: 128,
		Constraints:   optimus.PlanConstraints{TopK: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", res.Stats)
	for i, row := range res.Rows {
		p := row.Point
		pol := fmt.Sprintf("%v", p.Policy)
		if p.PrefixTokens > 0 {
			pol += fmt.Sprintf(" pfx=%d", p.PrefixTokens)
		}
		fmt.Printf("  %2d. %-16s rate %g  p95 %7.3fs  hits %3d  saved %6d  tok/s %6.0f\n",
			i+1, pol, p.Rate, row.Metrics.Time, row.Metrics.PrefixHits,
			row.Metrics.PrefixSavedTokens, row.Metrics.TokensPerSec)
	}
	fmt.Println("\nReservation ignores the axis (one baseline candidate per rate); the")
	fmt.Println("paged candidates expand it, and the ranking shows how much shared")
	fmt.Println("prompt buys how much p95 at each load.")
}
