package optimus

import (
	"bytes"
	"strings"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/kernels"
	"optimus/internal/roofline"
	"optimus/internal/tech"
	"optimus/internal/uarch"
)

func TestPublicPlannerFlow(t *testing.T) {
	sys, err := NewSystem("a100", 16, "nvlink3", "hdr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ModelByName("gpt-22b")
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestMapping(PlanRequest{
		Model: cfg, System: sys, GlobalBatch: 16, Seq: 2048, Precision: BF16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Fits || best.Time <= 0 {
		t.Errorf("planner returned a bad best: %+v", best)
	}
	all, err := PlanMapping(PlanRequest{
		Model: cfg, System: sys, GlobalBatch: 16, Seq: 2048, Precision: BF16,
		Constraints: PlanConstraints{TopK: 3},
	})
	if err != nil || len(all) == 0 || len(all) > 3 {
		t.Fatalf("PlanMapping = %d candidates, %v", len(all), err)
	}
}

func TestPublicPipelineSimulator(t *testing.T) {
	res, err := SimulatePipeline(PipelineConfig{
		Stages: 4, Microbatches: 8, Chunks: 1, FwdTime: 1, BwdTime: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 33 { // (8 + 3) slots × 3
		t.Errorf("simulated makespan = %g, want 33", res.Total)
	}
}

func TestPublicTaskGraph(t *testing.T) {
	cfg, err := ModelByName("llama2-7b")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildTaskGraph(TaskGraphSpec{
		Model: cfg,
		Exec: kernels.Exec{
			Batch: 1, Seq: 64, Context: 64, TP: 1,
			Precision: tech.FP16, Phase: kernels.Prefill,
		},
		Layers: 2,
		Engine: roofline.New(arch.A100()),
		Link:   arch.IntraLink(tech.NVLink3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 {
		t.Fatal("empty graph")
	}
	if !strings.Contains(g.DOT("test"), "digraph") {
		t.Error("DOT export broken")
	}
}

func TestPublicEnergyFlow(t *testing.T) {
	sys, err := NewSystem("a100", 8, "nvlink3", "hdr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ModelByName("gpt-22b")
	if err != nil {
		t.Fatal(err)
	}
	spec := TrainSpec{
		Model: cfg, System: sys,
		Map:         Mapping{DP: 1, TP: 8, PP: 1, Microbatch: 4, Schedule: OneFOneB},
		GlobalBatch: 4, Seq: 2048, Precision: BF16, Recompute: FullRecompute,
	}
	res, err := PredictTraining(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TrainingEnergy(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgPowerW <= 0 {
		t.Error("no power estimate")
	}
	run, err := PriceTrainingRun(spec, res, 1e9, DefaultPrices())
	if err != nil {
		t.Fatal(err)
	}
	if run.Cost.Total() <= 0 {
		t.Error("no cost estimate")
	}

	isys, err := NewSystem("a100", 1, "nvlink3", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	llama, _ := ModelByName("llama2-7b")
	ispec := InferSpec{
		Model: llama, System: isys, TP: 1, Batch: 1,
		PromptTokens: 100, GenTokens: 50, Precision: FP16,
	}
	ires, err := PredictInference(ispec)
	if err != nil {
		t.Fatal(err)
	}
	irep, err := InferenceEnergy(ispec, ires)
	if err != nil {
		t.Fatal(err)
	}
	if irep.PerDevice.Total() <= 0 {
		t.Error("no inference energy")
	}
}

func TestPublicDeriveFlow(t *testing.T) {
	base := Design{
		Node:    tech.N5,
		DRAM:    tech.HBM2E,
		Network: tech.IBXDRx8,
		Budget:  uarch.A100ClassBudget(),
		Alloc:   uarch.DefaultAllocation(),
	}
	dev, err := DeriveDevice(base)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Validate() != nil {
		t.Error("derived device invalid")
	}
	sys, err := DeriveSystem(base, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumDevices() != 16 {
		t.Errorf("derived system size = %d", sys.NumDevices())
	}
	res, err := OptimizeDesign(base, func(d Design) (float64, error) {
		return 2 - d.Alloc.AreaCore, nil
	}, DSEOptions{MaxIters: 10, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= res.StartCost {
		t.Error("DSE should improve on a trivially improvable objective")
	}
}

func TestPublicJSONConfigs(t *testing.T) {
	var buf bytes.Buffer
	d, err := DeviceByName("h200")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDeviceJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDeviceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name {
		t.Errorf("round trip name = %q", back.Name)
	}
	if _, err := ReadSystemJSON(strings.NewReader("{")); err == nil {
		t.Error("malformed system JSON should fail")
	}
}
