module optimus

go 1.24
