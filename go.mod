module optimus

go 1.24

// No external requirements by design. cmd/optimuslint would normally pin
// golang.org/x/tools for go/analysis + analysistest, but this build
// environment has no module proxy; internal/lint/analysis mirrors that
// API offline so the analyzers port back with an import swap.
