# Tier-1 gate (referenced from ROADMAP.md): everything `make check` runs
# must stay green in every PR.

GO ?= go

.PHONY: check vet lint build test race bench bench-json sweep-bench serve-bench cluster-bench cover cover-race fuzz-smoke build-386

check: vet lint build cover-race

vet:
	$(GO) vet ./...

# The simulator-invariant analyzer suite (cmd/optimuslint): determinism,
# keycomplete, hotpath, floateq plus the extra vet passes. Exit contract
# matches go vet — any finding fails the gate; deliberate sites carry an
# annotation with a justification (see README "Invariant lints").
lint:
	$(GO) run ./cmd/optimuslint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Machine-readable throughput snapshot: runs the serve/cluster/sweep
# benchmarks and parses `go test -bench` output into $(BENCH_JSON) via
# cmd/benchjson (name, iterations, and every metric incl. sim-req/s).
# CI runs it with BENCHTIME=1x as a smoke test so the bench path cannot
# rot; locally the default 1s benchtime gives comparable numbers.
BENCH_JSON ?= BENCH_PR10.json
BENCHTIME ?= 1s
bench-json:
	@set -e; \
	out=$$($(GO) test -run xxx -bench 'BenchmarkServe|BenchmarkCluster|BenchmarkSweep' -benchmem -benchtime $(BENCHTIME) .); \
	printf '%s\n' "$$out"; \
	printf '%s\n' "$$out" | $(GO) run ./cmd/benchjson > $(BENCH_JSON); \
	echo "bench-json: wrote $(BENCH_JSON)"

# The plan-sweep speedup trajectory: parallel must stay ≥3× serial.
sweep-bench:
	$(GO) test -run xxx -bench 'BenchmarkSweep' -benchmem .

# Serving-simulator throughput: simulated requests per wall-clock second.
serve-bench:
	$(GO) test -run xxx -bench 'BenchmarkServe' -benchmem .

# Fleet-simulator throughput: goroutine-per-replica speedup over the
# single-instance path, and the load-aware routing barrier's overhead.
cluster-bench:
	$(GO) test -run xxx -bench 'BenchmarkCluster' -benchmem .

# 32-bit cross-build: pins the PR-3 page-count fix (maxTotalPages and the
# PR-5 per-pool counters must fit 32-bit ints) so it cannot regress
# unbuilt.
build-386:
	GOOS=linux GOARCH=386 $(GO) build ./...

# Short smoke run of every checked-in fuzz harness. `go test` allows one
# -fuzz target per invocation, so iterate; the harnesses double as
# regression suites under plain `go test`, this actually fuzzes them.
FUZZTIME ?= 10s
FUZZ_PKGS := ./internal/workload ./internal/serve ./internal/sweep ./internal/cluster ./cmd/optimus
fuzz-smoke:
	@set -e; \
	for pkg in $(FUZZ_PKGS); do \
		targets=$$($(GO) test -list 'Fuzz.*' $$pkg | grep '^Fuzz') || \
			{ echo "fuzz-smoke: no fuzz targets found in $$pkg"; exit 1; }; \
		for f in $$targets; do \
			echo "fuzz-smoke: $$pkg $$f ($(FUZZTIME))"; \
			$(GO) test -run '^$$' -fuzz "^$$f$$" -fuzztime $(FUZZTIME) $$pkg; \
		done; \
	done

# Coverage floors shared by cover-race (the `make check` gate) and the
# standalone cover target, so the two can never silently diverge.
SERVE_COVER_FLOOR := 85
SWEEP_COVER_FLOOR := 80
CLUSTER_COVER_FLOOR := 80
WORKLOAD_COVER_FLOOR := 85

# Tier-1 test pass: -race and -cover in one run, with the `cover` floors
# enforced from the same output — the heavy simulation suites execute
# once per `make check`, not twice.
cover-race:
	@set -e; \
	out=$$($(GO) test -race -cover ./... 2>&1) || { printf '%s\n' "$$out"; exit 1; }; \
	printf '%s\n' "$$out"; \
	floor() { \
		pct=$$(printf '%s\n' "$$out" | sed -n "s|^ok[[:space:]]*$$1[[:space:]].*coverage: \([0-9.]*\)% of statements.*|\1|p"); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$1"; exit 1; fi; \
		echo "cover: $$1 at $$pct% (floor $$2%)"; \
		awk -v p="$$pct" -v f="$$2" 'BEGIN { exit !(p+0 >= f+0) }' \
			|| { echo "cover: FAIL — $$1 fell below the $$2% floor"; exit 1; }; \
	}; \
	floor optimus/internal/workload $(WORKLOAD_COVER_FLOOR); \
	floor optimus/internal/serve $(SERVE_COVER_FLOOR); \
	floor optimus/internal/sweep $(SWEEP_COVER_FLOOR); \
	floor optimus/internal/cluster $(CLUSTER_COVER_FLOOR)

# Coverage floors on the serving simulator and sweep engine — the paged
# KV-cache hot paths — so tier-1 fails when new code in them arrives
# untested. Floors sit below current coverage (serve ~97%, sweep ~91%)
# to leave room for honest refactors, not for untested subsystems.
# Standalone convenience; `make check` enforces the same floors via
# cover-race.
cover:
	@set -e; \
	check() { \
		out=$$($(GO) test -cover $$1 2>&1) || { printf '%s\n' "$$out"; echo "cover: tests failed in $$1"; exit 1; }; \
		pct=$$(printf '%s\n' "$$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then printf '%s\n' "$$out"; echo "cover: no coverage reported for $$1"; exit 1; fi; \
		echo "cover: $$1 at $$pct% (floor $$2%)"; \
		awk -v p="$$pct" -v f="$$2" 'BEGIN { exit !(p+0 >= f+0) }' \
			|| { echo "cover: FAIL — $$1 fell below the $$2% floor"; exit 1; }; \
	}; \
	check ./internal/workload $(WORKLOAD_COVER_FLOOR); \
	check ./internal/serve $(SERVE_COVER_FLOOR); \
	check ./internal/sweep $(SWEEP_COVER_FLOOR); \
	check ./internal/cluster $(CLUSTER_COVER_FLOOR)
