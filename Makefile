# Tier-1 gate (referenced from ROADMAP.md): everything `make check` runs
# must stay green in every PR.

GO ?= go

.PHONY: check vet build test race bench sweep-bench serve-bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# The plan-sweep speedup trajectory: parallel must stay ≥3× serial.
sweep-bench:
	$(GO) test -run xxx -bench 'BenchmarkSweep' -benchmem .

# Serving-simulator throughput: simulated requests per wall-clock second.
serve-bench:
	$(GO) test -run xxx -bench 'BenchmarkServe' -benchmem .
