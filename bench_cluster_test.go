package optimus

import (
	"fmt"
	"testing"

	"optimus/internal/cluster"
)

// clusterBenchSpec is the cluster-bench workload: the serve-bench capacity
// replicated R times behind a routing policy, under a fleet-wide Poisson
// stream heavy enough that every replica batches several sequences.
func clusterBenchSpec(tb testing.TB, reps int, rt cluster.Routing, requests int) cluster.Spec {
	tb.Helper()
	cap := serveBenchSpec(tb, 0)
	cap.PromptTokens, cap.GenTokens = 0, 0
	cap.Rate, cap.Seed = 0, 0
	return cluster.Spec{
		Replicas:     []cluster.Replica{{Spec: cap, Count: reps}},
		Routing:      rt,
		PromptTokens: 200, GenTokens: 200,
		Rate: 4 * float64(reps), Requests: requests, Seed: 1,
	}
}

// BenchmarkClusterFleet reports fleet-simulation throughput across fleet
// sizes and routing policies — the `make cluster-bench` gate. Round-robin
// assigns upfront and runs replicas embarrassingly parallel; least-queue
// pays a per-arrival synchronization barrier, so the two bracket the
// router's overhead.
func BenchmarkClusterFleet(b *testing.B) {
	const requests = 256
	for _, bench := range []struct {
		reps int
		rt   cluster.Routing
	}{
		{1, cluster.RoundRobin},
		{4, cluster.RoundRobin},
		{4, cluster.LeastQueue},
	} {
		b.Run(fmt.Sprintf("R=%d/%v", bench.reps, bench.rt), func(b *testing.B) {
			spec := clusterBenchSpec(b, bench.reps, bench.rt, requests)
			rn := cluster.NewRunner()
			b.ReportAllocs()
			b.ResetTimer()
			var last cluster.Result
			for i := 0; i < b.N; i++ {
				res, err := rn.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			if last.Requests != requests {
				b.Fatalf("fleet completed %d requests, want %d", last.Requests, requests)
			}
			b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}
