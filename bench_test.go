// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, regenerating the experiment on every iteration and reporting
// its headline metric alongside the model's own evaluation cost, plus
// ablation benchmarks for the design choices DESIGN.md calls out.
//
// Run with: go test -bench=. -benchmem
package optimus

import (
	"context"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/comm"
	"optimus/internal/gemv"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/repro"
	"optimus/internal/roofline"
	"optimus/internal/sweep"
	"optimus/internal/tech"
	"optimus/internal/train"
	"optimus/internal/units"
	"optimus/internal/valdata"
)

// benchExperiment regenerates one experiment per iteration.
func benchExperiment(b *testing.B, id string) repro.Table {
	b.Helper()
	var tb repro.Table
	var err error
	for i := 0; i < b.N; i++ {
		tb, err = repro.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

// BenchmarkTable1 regenerates the training validation and reports the mean
// relative error against the published Megatron-LM measurements.
func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, "table1")
	var errs []float64
	for _, c := range valdata.Table1() {
		spec, err := repro.TrainSpecFor(c)
		if err != nil {
			b.Fatal(err)
		}
		res, err := train.Predict(spec)
		if err != nil {
			b.Fatal(err)
		}
		errs = append(errs, units.RelErr(res.Total, c.RefSeconds))
	}
	b.ReportMetric(100*units.Mean(errs), "mean-err-%")
	b.ReportMetric(100*units.Max(errs), "max-err-%")
}

// BenchmarkTable2 regenerates the inference validation.
func BenchmarkTable2(b *testing.B) {
	benchExperiment(b, "table2")
}

// BenchmarkTable4 regenerates the per-GEMM bound analysis.
func BenchmarkTable4(b *testing.B) {
	benchExperiment(b, "table4")
}

// BenchmarkFig3 regenerates the GEMV calibration and reports the clustered
// MAPE (paper: 5.4%).
func BenchmarkFig3(b *testing.B) {
	benchExperiment(b, "fig3")
	o := gemv.NewOracle(42)
	samples := gemv.Profile(o, gemv.LLMKernels())
	cal, err := gemv.Calibrate(samples, 6)
	if err != nil {
		b.Fatal(err)
	}
	st := gemv.Summarize(gemv.Evaluate(o, cal, samples))
	b.ReportMetric(100*st.MAPEClustered, "mape-clustered-%")
	b.ReportMetric(100*st.MAPEConstant, "mape-constant-%")
}

// BenchmarkFig4 regenerates the memory dissection.
func BenchmarkFig4(b *testing.B) {
	benchExperiment(b, "fig4")
}

// BenchmarkFig5 regenerates the GPU-generation scaling and reports the
// A100→B200 speedup (paper: ~35x).
func BenchmarkFig5(b *testing.B) {
	benchExperiment(b, "fig5")
	plats := repro.Fig5Platforms()
	first, err := repro.Fig5Predict(plats[0])
	if err != nil {
		b.Fatal(err)
	}
	last, err := repro.Fig5Predict(plats[len(plats)-1])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric((first.Total/1024)/(last.Total/4096), "a100-to-b200-x")
}

// BenchmarkFig6 regenerates the technology-node DSE sweep (42 optimizer
// runs per iteration).
func BenchmarkFig6(b *testing.B) {
	benchExperiment(b, "fig6")
}

// BenchmarkFig7 regenerates the bound-type evolution study.
func BenchmarkFig7(b *testing.B) {
	benchExperiment(b, "fig7")
}

// BenchmarkFig8 regenerates the inference bound-split study.
func BenchmarkFig8(b *testing.B) {
	benchExperiment(b, "fig8")
}

// BenchmarkFig9 regenerates the DRAM-technology scaling study and reports
// the 8-GPU communication-to-memory ratio (paper: ~1.6x for Llama2-13B).
func BenchmarkFig9(b *testing.B) {
	benchExperiment(b, "fig9")
	res, err := repro.Fig9Predict(repro.Fig9Points()[2], 8) // HBM2e-NV3
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.CommTime/res.MemoryTime, "comm-over-memory")
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationRingVsTree compares the two all-reduce models on a
// decode-step payload at 8 GPUs: the tree's log-latency term is what lets
// inference scale (§3.4).
func BenchmarkAblationRingVsTree(b *testing.B) {
	link := arch.IntraLink(tech.NVLink3)
	const payload = 10240 // one decode-step activation, bytes
	var ring, tree float64
	for i := 0; i < b.N; i++ {
		ring = comm.AllReduceTime(comm.Ring, payload, 8, link)
		tree = comm.AllReduceTime(comm.DoubleBinaryTree, payload, 8, link)
	}
	b.ReportMetric(ring/tree, "ring-over-tree")
}

// BenchmarkAblationRecompute compares iteration times across the three
// recomputation regimes on the GPT-175B row.
func BenchmarkAblationRecompute(b *testing.B) {
	base, err := repro.TrainSpecFor(valdata.Table1()[1])
	if err != nil {
		b.Fatal(err)
	}
	var none, full train.Result
	for i := 0; i < b.N; i++ {
		spec := base
		spec.Recompute = memfoot.NoRecompute
		none, err = train.Predict(spec)
		if err != nil {
			b.Fatal(err)
		}
		spec.Recompute = memfoot.Full
		full, err = train.Predict(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(full.Total/none.Total, "full-over-none")
}

// BenchmarkAblationSchedules compares pipeline bubbles across GPipe, 1F1B
// and interleaved 1F1B on the GPT-1008B row (PP=64).
func BenchmarkAblationSchedules(b *testing.B) {
	base, err := repro.TrainSpecFor(valdata.Table1()[3])
	if err != nil {
		b.Fatal(err)
	}
	var f1b1, il train.Result
	for i := 0; i < b.N; i++ {
		spec := base
		spec.Map.Schedule = parallel.OneFOneB
		f1b1, err = train.Predict(spec)
		if err != nil {
			b.Fatal(err)
		}
		spec.Map.Schedule = parallel.Interleaved1F1B
		spec.Map.VirtualStages = 2
		il, err = train.Predict(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f1b1.Bubble/il.Bubble, "bubble-1f1b-over-interleaved")
}

// BenchmarkAblationHierarchicalRoofline compares the hierarchical roofline
// against a flat (DRAM-only) one on the Table 4 QKV GEMM: the flat model
// is the DeepFlow behaviour §5.3 criticizes.
func BenchmarkAblationHierarchicalRoofline(b *testing.B) {
	full := roofline.New(arch.A100())
	flat := arch.A100()
	flat.Mem = flat.Mem[2:] // drop L1/L2: DRAM-only roofline
	flatEng := roofline.New(flat)
	g := roofline.GEMM{M: 200, N: 3 * 5120, K: 5120, Precision: tech.FP16}
	var h, f roofline.Estimate
	for i := 0; i < b.N; i++ {
		h = full.EstimateGEMM(g)
		f = flatEng.EstimateGEMM(g)
	}
	b.ReportMetric(h.Time/f.Time, "hier-over-flat")
}

// BenchmarkAblationSequenceParallel measures the SP gain on the 175B
// selective-recompute row.
func BenchmarkAblationSequenceParallel(b *testing.B) {
	base, err := repro.TrainSpecFor(valdata.Table1()[5])
	if err != nil {
		b.Fatal(err)
	}
	var off, on train.Result
	for i := 0; i < b.N; i++ {
		spec := base
		spec.Map.SP = false
		off, err = train.Predict(spec)
		if err != nil {
			b.Fatal(err)
		}
		spec.Map.SP = true
		on, err = train.Predict(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(off.Total/on.Total, "nosp-over-sp")
}

// BenchmarkAblationGEMVCalibration compares clustered vs constant DRAM
// utilization factors (Fig. 3's two point sets).
func BenchmarkAblationGEMVCalibration(b *testing.B) {
	o := gemv.NewOracle(42)
	samples := gemv.Profile(o, gemv.LLMKernels())
	var st gemv.Stats
	for i := 0; i < b.N; i++ {
		cal, err := gemv.Calibrate(samples, 6)
		if err != nil {
			b.Fatal(err)
		}
		st = gemv.Summarize(gemv.Evaluate(o, cal, samples))
	}
	b.ReportMetric(st.MAPEConstant/st.MAPEClustered, "constant-over-clustered-err")
}

// BenchmarkPredictTraining measures the raw cost of one training
// prediction (the DSE inner loop).
func BenchmarkPredictTraining(b *testing.B) {
	spec, err := repro.TrainSpecFor(valdata.Table1()[1])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.Predict(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictInference measures the raw cost of one inference
// prediction.
func BenchmarkPredictInference(b *testing.B) {
	spec, err := repro.InferSpecFor("Llama2-13B", 2, arch.A100(), tech.NVLink3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer0(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// infer0 keeps the infer import local to the benchmark file tidy.
func infer0(s InferSpec) (InferResult, error) { return PredictInference(s) }

// BenchmarkRooflineGEMM measures the kernel-model hot path.
func BenchmarkRooflineGEMM(b *testing.B) {
	eng := roofline.New(arch.A100())
	g := roofline.GEMM{M: 2048, N: 6144, K: 12288, Precision: tech.BF16}
	for i := 0; i < b.N; i++ {
		eng.EstimateGEMM(g)
	}
}

// BenchmarkMemoryFootprint measures the footprint model.
func BenchmarkMemoryFootprint(b *testing.B) {
	spec := memfoot.TrainSpec{
		Model: model.GPT530B(),
		Map: parallel.Mapping{
			DP: 1, TP: 8, PP: 35, Microbatch: 1, Schedule: parallel.OneFOneB,
		},
		Seq: 2048, GlobalBatch: 280, Recompute: memfoot.Selective,
	}
	for i := 0; i < b.N; i++ {
		if _, err := memfoot.Train(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepBenchSpec is a ~500-candidate plan-sweep grid: GPT-175B on 64
// A100s at two global batch sizes. It is memory-tight — most candidates
// overflow the device — so it exercises both the engine's feasibility
// pruning and the full costing path.
func sweepBenchSpec(b *testing.B) sweep.Spec {
	b.Helper()
	sys, err := arch.DGXA100(64)
	if err != nil {
		b.Fatal(err)
	}
	return sweep.Spec{
		Models:        []model.Config{model.GPT175B()},
		Systems:       []*arch.System{sys},
		GlobalBatches: []int{64, 128},
		Constraints:   sweep.Constraints{TopK: 10},
	}
}

// BenchmarkSweepSerial is the golden reference path: every candidate is
// costed with the full training predictor, one at a time.
func BenchmarkSweepSerial(b *testing.B) {
	spec := sweepBenchSpec(b)
	var res sweep.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = sweep.Serial(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Enumerated), "candidates")
	b.ReportMetric(float64(res.Stats.Evaluated), "costed")
}

// BenchmarkSweepParallel is the concurrent engine on the same grid:
// bounded worker pool plus memory-feasibility pruning before costing. Its
// ranking is byte-identical to the serial path's (asserted by the
// internal/sweep equivalence tests); the speedup is the headline number
// later PRs must not regress.
func BenchmarkSweepParallel(b *testing.B) {
	spec := sweepBenchSpec(b)
	ctx := context.Background()
	var res sweep.Result
	var err error
	for i := 0; i < b.N; i++ {
		// A fresh engine per iteration: the speedup measured here is
		// pruning + the pool, not cache reuse.
		res, err = sweep.Run(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Enumerated), "candidates")
	b.ReportMetric(float64(res.Stats.Pruned), "pruned")
}

// BenchmarkSweepWarmCache re-runs the grid on one engine whose memo
// already holds every evaluation — the steady state of a long planning
// session, and the target the cross-run result cache must hold.
func BenchmarkSweepWarmCache(b *testing.B) {
	spec := sweepBenchSpec(b)
	ctx := context.Background()
	e := sweep.New(0)
	if _, err := e.Run(ctx, spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}
