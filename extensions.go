package optimus

import (
	"optimus/internal/energy"
	"optimus/internal/graph"
	"optimus/internal/mapsearch"
	"optimus/internal/pipesim"
)

// Extension surface: capabilities built on top of the paper's model — the
// automatic parallelization planner (§5.1's "determine the best parallelism
// mapping"), the discrete-event pipeline-schedule simulator that
// cross-checks the closed-form bubble model, the task-graph view of
// Fig. 1, and the energy/TCO model the paper names as future work (§7).

type (
	// PlanRequest describes an automatic parallelization search.
	PlanRequest = mapsearch.Request
	// PlanConstraints bound the search space.
	PlanConstraints = mapsearch.Constraints
	// PlanCandidate is one evaluated strategy.
	PlanCandidate = mapsearch.Candidate

	// PipelineConfig describes a pipeline-schedule simulation.
	PipelineConfig = pipesim.Config
	// PipelineResult is a simulated schedule timeline.
	PipelineResult = pipesim.Result

	// TaskGraph is a DAG of kernels, collectives and transfers.
	TaskGraph = graph.Graph
	// TaskGraphSpec describes a forward-graph construction.
	TaskGraphSpec = graph.BuildSpec

	// EnergyReport is an energy/power summary.
	EnergyReport = energy.Report
	// Prices parameterizes the TCO model.
	Prices = energy.Prices
	// TrainingRunCost summarizes full-run training economics.
	TrainingRunCost = energy.TrainingRun
)

// PlanMapping searches the (DP, TP, PP, SP, microbatch, schedule,
// recomputation) space for the fastest strategy that fits device memory.
func PlanMapping(r PlanRequest) ([]PlanCandidate, error) { return mapsearch.Search(r) }

// BestMapping returns only the top strategy.
func BestMapping(r PlanRequest) (PlanCandidate, error) { return mapsearch.Best(r) }

// SimulatePipeline executes a pipeline schedule microbatch by microbatch
// and returns its timeline — an independent check of the closed-form
// bubble model used by PredictTraining.
func SimulatePipeline(c PipelineConfig) (PipelineResult, error) { return pipesim.Simulate(c) }

// BuildTaskGraph constructs the per-device forward task graph of Fig. 1
// with per-node predicted costs; use its DOT method for visualization.
func BuildTaskGraph(s TaskGraphSpec) (*TaskGraph, error) { return graph.BuildForward(s) }

// TrainingEnergy returns the per-iteration energy report for a predicted
// training result.
func TrainingEnergy(spec TrainSpec, res TrainResult) (EnergyReport, error) {
	return energy.Training(spec, res)
}

// InferenceEnergy returns the per-request energy report for a predicted
// inference result.
func InferenceEnergy(spec InferSpec, res InferResult) (EnergyReport, error) {
	return energy.Inference(spec, res)
}

// DefaultPrices returns 2024-class cloud pricing for the TCO model.
func DefaultPrices() Prices { return energy.DefaultPrices() }

// PriceTrainingRun extrapolates one iteration to a full training run over
// a token budget and prices it — the performance-per-TCO analysis of the
// paper's introduction.
func PriceTrainingRun(spec TrainSpec, res TrainResult, tokens float64, p Prices) (TrainingRunCost, error) {
	return energy.PriceTrainingRun(spec, res, tokens, p)
}
