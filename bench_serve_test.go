package optimus

import (
	"testing"

	"optimus/internal/arch"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/serve"
	"optimus/internal/tech"
)

// serveBenchSpec is the serve-bench workload: Llama2-13B on 2 H100s under
// saturating Poisson load, so every iteration batches several sequences.
func serveBenchSpec(tb testing.TB, requests int) serve.Spec {
	tb.Helper()
	sys, err := arch.SystemOf(arch.H100(), 2, 8, tech.NVLink4, tech.IBNDR)
	if err != nil {
		tb.Fatal(err)
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		tb.Fatal(err)
	}
	return serve.Spec{
		Model: cfg, System: sys, TP: 2, Precision: tech.FP16,
		PromptTokens: 200, GenTokens: 200,
		Arrival: serve.Poisson, Rate: 4, Requests: requests, Seed: 1,
	}
}

// BenchmarkServeSimulator reports how many requests the continuous-batching
// simulator can simulate per wall-clock second — the `make serve-bench`
// throughput gate alongside the sweep-bench speedup trajectory. It drives
// a pooled Runner, the steady-state shape sweep workers and cluster
// replicas use: slabs, pricing tables and scratch survive across runs
// (TestRunnerReuseMatchesFresh pins pooled == fresh byte-identically).
func BenchmarkServeSimulator(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	rn := serve.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	var last serve.Result
	for i := 0; i < b.N; i++ {
		res, err := rn.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
	b.ReportMetric(float64(last.Iterations), "iters/run")
	b.ReportMetric(last.E2E.P95*1e3, "p95-e2e-ms")
}

// BenchmarkServeSimulatorPaged tracks the paged-admission hot path under
// real page pressure: the KV budget is squeezed to a handful of full
// contexts so block growth, LIFO preemption and recompute readmissions
// all run every iteration.
func BenchmarkServeSimulatorPaged(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	spec.Policy = serve.Paged
	perRequest := memfoot.Inference(spec.Model, spec.TP, 1,
		spec.PromptTokens+spec.GenTokens, spec.Precision.Bytes()).KVCache
	spec.KVCapacity = 8 * perRequest
	rn := serve.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	var last serve.Result
	for i := 0; i < b.N; i++ {
		res, err := rn.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last.Preemptions == 0 {
		b.Fatal("paged bench must exercise preemption; tighten its KV budget")
	}
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
	b.ReportMetric(float64(last.Preemptions), "preempts/run")
	b.ReportMetric(last.MeanKVUtil*100, "kv-util-%")
}

// BenchmarkServeSimulatorPrefixTiered tracks the PR-8 admission paths
// together under page pressure: every request shares a prefix (so hit
// accounting and refcounting run each admission) and preemption victims
// swap to a host KV tier (so the swap-out/swap-in pricing runs too).
func BenchmarkServeSimulatorPrefixTiered(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	spec.Policy = serve.Paged
	spec.PrefixTokens = 64
	perRequest := memfoot.Inference(spec.Model, spec.TP, 1,
		spec.PromptTokens+spec.GenTokens, spec.Precision.Bytes()).KVCache
	spec.KVCapacity = 8 * perRequest
	spec.HostKVBytes = 16 * perRequest
	spec.SwapGBps = serve.DefaultSwapGBps
	rn := serve.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	var last serve.Result
	for i := 0; i < b.N; i++ {
		res, err := rn.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last.PrefixHits == 0 || last.KVSwapOuts == 0 {
		b.Fatalf("prefix+tiered bench must exercise both paths: %d hits, %d swap-outs",
			last.PrefixHits, last.KVSwapOuts)
	}
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
	b.ReportMetric(float64(last.PrefixHits), "pfx-hits/run")
	b.ReportMetric(float64(last.KVSwapOuts), "swap-outs/run")
}

// BenchmarkServeBursty drives the piecewise arrival-rate schedule path:
// a quiet-burst-quiet timeline whose burst segment packs arrivals far
// above the sustainable rate, so the queue swells and drains every run —
// the inhomogeneous-Poisson generation and the backlogged event loop are
// both on the clock.
func BenchmarkServeBursty(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	spec.Rate = 0
	spec.Schedule = serve.Schedule{
		{Start: 0, End: 30, Rate: 1},
		{Start: 30, End: 45, Rate: 16},
		{Start: 45, End: 90, Rate: 2},
	}
	rn := serve.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	var last serve.Result
	for i := 0; i < b.N; i++ {
		res, err := rn.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
	b.ReportMetric(last.Queue.P95*1e3, "p95-queue-ms")
}

// BenchmarkServeSessionCohorts tracks the multi-turn session path: every
// client session issues four turns whose prompts carry the session's
// accumulated context as a growing shared prefix, so session expansion,
// prefix-block growth and hit accounting all run each simulation.
func BenchmarkServeSessionCohorts(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	spec.Policy = serve.Paged
	spec.Rate = 2
	spec.Turns = 4
	spec.Think = 5
	perRequest := memfoot.Inference(spec.Model, spec.TP, 1,
		spec.PromptTokens+spec.GenTokens, spec.Precision.Bytes()).KVCache
	spec.KVCapacity = 48 * perRequest
	rn := serve.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	var last serve.Result
	for i := 0; i < b.N; i++ {
		res, err := rn.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last.PrefixHits == 0 {
		b.Fatal("session-cohort bench must hit the session prefix cache")
	}
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
	b.ReportMetric(float64(last.PrefixHits), "pfx-hits/run")
}

// TestServeSimulatorAllocBudget pins the zero-allocation-core refactor
// with a machine-independent proxy: allocations per 256-request
// simulation, per admission policy and arrival process. The event loop
// itself is allocation-free in steady state (struct-of-arrays request
// slab, index deques, dense pricing tables, reusable percentile scratch),
// so a fresh Run costs only its setup — ~120 allocations, ratcheted down
// from the pointer-per-request era's ~1590 (budget was 2500) — and a
// pooled Runner re-run costs single digits. A per-iteration or
// per-request allocation regression — the way `make serve-bench`
// throughput would quietly decay — blows straight through these budgets.
// Wall-clock throughput itself stays a benchmark (BenchmarkServeSimulator*),
// where it belongs.
func TestServeSimulatorAllocBudget(t *testing.T) {
	for _, tc := range []struct {
		name string
		// fresh/pooled are the measured counts with ~2.5× headroom for
		// toolchain drift; all far under the 600 ratchet line.
		fresh, pooled float64
		mut           func(*serve.Spec)
	}{
		{"reserve", 300, 16, func(s *serve.Spec) {}},
		{"paged", 300, 16, func(s *serve.Spec) {
			s.Policy = serve.Paged
			per := memfoot.Inference(s.Model, s.TP, 1, s.PromptTokens+s.GenTokens, s.Precision.Bytes()).KVCache
			s.KVCapacity = 8 * per
		}},
		{"disagg", 300, 16, func(s *serve.Spec) {
			s.Policy = serve.Disaggregated
			s.TransferGBps = 50
			per := memfoot.Inference(s.Model, s.TP, 1, s.PromptTokens+s.GenTokens, s.Precision.Bytes()).KVCache
			s.KVCapacity = 12 * per
		}},
		{"prefix+tiered", 300, 16, func(s *serve.Spec) {
			s.Policy = serve.Paged
			s.PrefixTokens = 64
			per := memfoot.Inference(s.Model, s.TP, 1, s.PromptTokens+s.GenTokens, s.Precision.Bytes()).KVCache
			s.KVCapacity = 8 * per
			s.HostKVBytes = 16 * per
			s.SwapGBps = serve.DefaultSwapGBps
		}},
		{"bursty", 300, 16, func(s *serve.Spec) {
			s.Rate = 0
			s.Schedule = serve.Schedule{
				{Start: 0, End: 30, Rate: 1},
				{Start: 30, End: 45, Rate: 16},
				{Start: 45, End: 90, Rate: 2},
			}
		}},
		{"closed-loop", 150, 16, func(s *serve.Spec) {
			s.Arrival = serve.ClosedLoop
			s.Rate = 0
			s.Clients = 16
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := serveBenchSpec(t, 256)
			tc.mut(&spec)
			got := testing.AllocsPerRun(5, func() {
				if _, err := serve.Run(spec); err != nil {
					t.Fatal(err)
				}
			})
			if got > tc.fresh {
				t.Errorf("fresh Run: %v allocs per 256-request simulation, budget %v — a hot-path allocation crept in",
					got, tc.fresh)
			}
			rn := serve.NewRunner()
			got = testing.AllocsPerRun(5, func() {
				if _, err := rn.Run(spec); err != nil {
					t.Fatal(err)
				}
			})
			if got > tc.pooled {
				t.Errorf("pooled Run: %v allocs per 256-request simulation, budget %v — the Runner reuse seam is leaking",
					got, tc.pooled)
			}
		})
	}
}

// BenchmarkServeSimulatorClosedLoop exercises the closed-loop arrival path
// (completion-driven arrivals, engine never idle).
func BenchmarkServeSimulatorClosedLoop(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	spec.Arrival = serve.ClosedLoop
	spec.Rate = 0
	spec.Clients = 16
	rn := serve.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rn.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
}
