package optimus

import (
	"testing"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/serve"
	"optimus/internal/tech"
)

// serveBenchSpec is the serve-bench workload: Llama2-13B on 2 H100s under
// saturating Poisson load, so every iteration batches several sequences.
func serveBenchSpec(b *testing.B, requests int) serve.Spec {
	b.Helper()
	sys, err := arch.SystemOf(arch.H100(), 2, 8, tech.NVLink4, tech.IBNDR)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		b.Fatal(err)
	}
	return serve.Spec{
		Model: cfg, System: sys, TP: 2, Precision: tech.FP16,
		PromptTokens: 200, GenTokens: 200,
		Arrival: serve.Poisson, Rate: 4, Requests: requests, Seed: 1,
	}
}

// BenchmarkServeSimulator reports how many requests the continuous-batching
// simulator can simulate per wall-clock second — the `make serve-bench`
// throughput gate alongside the sweep-bench speedup trajectory.
func BenchmarkServeSimulator(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	b.ReportAllocs()
	b.ResetTimer()
	var last serve.Result
	for i := 0; i < b.N; i++ {
		res, err := serve.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
	b.ReportMetric(float64(last.Iterations), "iters/run")
	b.ReportMetric(last.E2E.P95*1e3, "p95-e2e-ms")
}

// BenchmarkServeSimulatorClosedLoop exercises the closed-loop arrival path
// (completion-driven arrivals, engine never idle).
func BenchmarkServeSimulatorClosedLoop(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	spec.Arrival = serve.ClosedLoop
	spec.Rate = 0
	spec.Clients = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := serve.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
}
