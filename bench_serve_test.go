package optimus

import (
	"testing"

	"optimus/internal/arch"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/serve"
	"optimus/internal/tech"
)

// serveBenchSpec is the serve-bench workload: Llama2-13B on 2 H100s under
// saturating Poisson load, so every iteration batches several sequences.
func serveBenchSpec(tb testing.TB, requests int) serve.Spec {
	tb.Helper()
	sys, err := arch.SystemOf(arch.H100(), 2, 8, tech.NVLink4, tech.IBNDR)
	if err != nil {
		tb.Fatal(err)
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		tb.Fatal(err)
	}
	return serve.Spec{
		Model: cfg, System: sys, TP: 2, Precision: tech.FP16,
		PromptTokens: 200, GenTokens: 200,
		Arrival: serve.Poisson, Rate: 4, Requests: requests, Seed: 1,
	}
}

// BenchmarkServeSimulator reports how many requests the continuous-batching
// simulator can simulate per wall-clock second — the `make serve-bench`
// throughput gate alongside the sweep-bench speedup trajectory.
func BenchmarkServeSimulator(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	b.ReportAllocs()
	b.ResetTimer()
	var last serve.Result
	for i := 0; i < b.N; i++ {
		res, err := serve.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
	b.ReportMetric(float64(last.Iterations), "iters/run")
	b.ReportMetric(last.E2E.P95*1e3, "p95-e2e-ms")
}

// BenchmarkServeSimulatorPaged tracks the paged-admission hot path under
// real page pressure: the KV budget is squeezed to a handful of full
// contexts so block growth, LIFO preemption and recompute readmissions
// all run every iteration.
func BenchmarkServeSimulatorPaged(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	spec.Policy = serve.Paged
	perRequest := memfoot.Inference(spec.Model, spec.TP, 1,
		spec.PromptTokens+spec.GenTokens, spec.Precision.Bytes()).KVCache
	spec.KVCapacity = 8 * perRequest
	b.ReportAllocs()
	b.ResetTimer()
	var last serve.Result
	for i := 0; i < b.N; i++ {
		res, err := serve.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last.Preemptions == 0 {
		b.Fatal("paged bench must exercise preemption; tighten its KV budget")
	}
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
	b.ReportMetric(float64(last.Preemptions), "preempts/run")
	b.ReportMetric(last.MeanKVUtil*100, "kv-util-%")
}

// TestServeSimulatorAllocBudget pins the refactor's hot-path cost with a
// machine-independent proxy: allocations per simulation. The admission
// policies are allocation-free per iteration (beginStep/admit/release
// touch only preallocated state), so the whole 256-request simulation
// stays in the low thousands of allocations; a per-iteration allocation
// regression — the way `make serve-bench` throughput would quietly decay —
// blows straight through the budget. Wall-clock throughput itself stays a
// benchmark (BenchmarkServeSimulator*), where it belongs.
func TestServeSimulatorAllocBudget(t *testing.T) {
	const budget = 2500 // measured ≈1590 for both policies at 256 requests
	spec := serveBenchSpec(t, 256)
	for _, policy := range []serve.Policy{serve.ReserveFull, serve.Paged} {
		spec.Policy = policy
		got := testing.AllocsPerRun(5, func() {
			if _, err := serve.Run(spec); err != nil {
				t.Fatal(err)
			}
		})
		if got > budget {
			t.Errorf("%v: %v allocs per 256-request simulation, budget %d — a hot-path allocation crept in",
				policy, got, budget)
		}
	}
}

// BenchmarkServeSimulatorClosedLoop exercises the closed-loop arrival path
// (completion-driven arrivals, engine never idle).
func BenchmarkServeSimulatorClosedLoop(b *testing.B) {
	const requests = 256
	spec := serveBenchSpec(b, requests)
	spec.Arrival = serve.ClosedLoop
	spec.Rate = 0
	spec.Clients = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := serve.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "sim-req/s")
}
