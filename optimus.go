// Package optimus is the public API of Optimus-Go, a from-scratch Go
// reproduction of "Performance Modeling and Workload Analysis of
// Distributed Large Language Model Training and Inference" (IISWC 2024).
//
// It exposes an analytical performance model for distributed LLM training
// and inference: describe a system (vendor preset or one derived from
// technology parameters), a model, and a parallelization mapping, and
// obtain iteration times, latency decompositions, memory footprints, and
// design-space optima — no GPU required.
//
//	sys, _ := optimus.NewSystem("a100", 64, "nvlink3", "hdr")
//	cfg, _ := optimus.ModelByName("gpt-175b")
//	res, _ := optimus.PredictTraining(optimus.TrainSpec{
//	    Model: cfg, System: sys,
//	    Map:         optimus.Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1},
//	    GlobalBatch: 64, Seq: 2048,
//	    Precision: optimus.BF16, Recompute: optimus.FullRecompute,
//	})
//	fmt.Println(res.Total) // ≈ 19 s per batch (Megatron-LM measured 18.1 s)
//
// # Plan sweeps
//
// Beyond single predictions, Sweep evaluates whole experiment grids —
// models × systems × precisions × batch sizes × mappings × schedules ×
// recomputation regimes — over a bounded worker pool with
// memory-feasibility pruning and memoization, returning a deterministic
// ranking (identical at any worker count):
//
//	sysA, _ := optimus.NewSystem("a100", 64, "nvlink3", "hdr")
//	sysH, _ := optimus.NewSystem("h100", 64, "nvlink4", "ndr")
//	gpt175b, _ := optimus.ModelByName("gpt-175b")
//	res, _ := optimus.Sweep(context.Background(), optimus.SweepSpec{
//	    Models:        []optimus.Model{gpt175b},
//	    Systems:       []*optimus.System{sysA, sysH},
//	    GlobalBatches: []int{64, 128},
//	    Constraints:   optimus.PlanConstraints{TopK: 5},
//	})
//	for _, row := range res.Rows {
//	    fmt.Printf("%s %s: %.1f s/batch\n", row.Point.System, row.Point.Map, row.Metrics.Time)
//	}
//	fmt.Println(res.Stats) // candidates enumerated / pruned / evaluated
//
// Cancel the context to stop a large sweep early; set SweepSpec.Workers
// to bound the pool (0 means GOMAXPROCS); set Workload to InferenceSweep
// to rank serving configurations by end-to-end latency instead.
//
// # Serving simulation
//
// Serve runs a deterministic discrete-event continuous-batching simulator
// on top of the per-step inference costs (PrefillCost / DecodeStepCost):
// seeded Poisson or closed-loop arrivals, iteration-level batching under a
// KV-cache admission budget, and per-request TTFT/TPOT/E2E latencies with
// p50/p95/p99 percentiles — the SLO surface capacity planning ranks on:
//
//	sys, _ := optimus.NewSystem("h100", 2, "nvlink4", "ndr")
//	cfg, _ := optimus.ModelByName("llama2-13b")
//	res, _ := optimus.Serve(optimus.ServeSpec{
//	    Model: cfg, System: sys, TP: 2, Precision: optimus.FP16,
//	    PromptTokens: 200, GenTokens: 200,
//	    Arrival: optimus.PoissonArrivals, Rate: 2, Requests: 512, Seed: 1,
//	})
//	fmt.Println(res.TTFT.P99, res.E2E.P95, res.TokensPerSec)
//
// KV-cache admission is a pluggable policy: the default ReserveFullPolicy
// reserves each request's whole prompt+generation context up front, while
// PagedPolicy allocates vLLM-style fixed-size token blocks
// (ServeSpec.PageTokens) that grow as a request decodes, preempting the
// youngest running sequence (recompute on readmission) under pressure —
// ServeResult then reports Preemptions, RecomputedTokens and KV page
// utilization alongside the SLO percentiles:
//
//	res, _ = optimus.Serve(optimus.ServeSpec{
//	    Model: cfg, System: sys, TP: 2, Precision: optimus.FP16,
//	    PromptTokens: 200, GenTokens: 800,
//	    Arrival: optimus.PoissonArrivals, Rate: 2, Requests: 512, Seed: 1,
//	    Policy: optimus.PagedPolicy, PageTokens: 16,
//	})
//	fmt.Println(res.Preemptions, res.RecomputedTokens, res.MeanKVUtil)
//
// DisaggregatedPolicy models DistServe-style disaggregated serving: the
// KV capacity splits into a prefill pool and a decode pool
// (ServeSpec.PrefillDevices / DecodeDevices of the TP devices), requests
// admit against the prefill pool on their prompt's pages alone, and each
// sequence migrates to the decode pool when its first token is emitted —
// paying a per-request KV transfer of its prompt's KV bytes over the
// ServeSpec.TransferGBps interconnect. ServeResult reports per-pool page
// peaks and the migration count and total transfer time:
//
//	res, _ = optimus.Serve(optimus.ServeSpec{
//	    Model: cfg, System: sys, TP: 2, Precision: optimus.FP16,
//	    PromptTokens: 200, GenTokens: 800,
//	    Arrival: optimus.PoissonArrivals, Rate: 2, Requests: 512, Seed: 1,
//	    Policy: optimus.DisaggregatedPolicy,
//	    PrefillDevices: 1, DecodeDevices: 1, TransferGBps: 50,
//	})
//	fmt.Println(res.KVTransfers, res.TransferTimeTotal, res.PeakDecodePages)
//
// Requests carry per-request shapes: ServeSpec.Mix generates a seeded
// multi-tenant workload (per-tenant rate shares and prompt/generation
// lengths) and ServeSpec.Trace replays an explicit timeline, with the
// spec-wide PromptTokens/GenTokens the degenerate single-tenant case.
// ServeResult.PerTenant breaks the SLO percentiles down per tenant:
//
//	res, _ = optimus.Serve(optimus.ServeSpec{
//	    Model: cfg, System: sys, TP: 2, Precision: optimus.FP16,
//	    Mix: []optimus.ServeTenantLoad{
//	        {Tenant: "chat", Share: 0.7, PromptTokens: 200, GenTokens: 200},
//	        {Tenant: "batch", Share: 0.3, PromptTokens: 2000, GenTokens: 100},
//	    },
//	    Arrival: optimus.PoissonArrivals, Rate: 2, Requests: 512, Seed: 1,
//	})
//	for _, tm := range res.PerTenant {
//	    fmt.Println(tm.Tenant, tm.TTFT.P95, tm.E2E.P95)
//	}
//
// Set SweepSpec.Workload to ServingSweep to sweep arrival rates × batch
// caps × admission policies × systems × precisions and rank by p95
// end-to-end latency — SweepSpec.Policies makes the admission policy a
// grid axis, so one sweep compares reservation against paged admission at
// every rate × batch-cap point, SweepSpec.PoolSplits does the same for
// the disaggregated pool split, and SweepSpec.Mixes/Trace for the
// workload shape (Metrics.PerTenant keeps the per-tenant SLOs).
//
// # Cluster serving
//
// ServeCluster scales the simulator from one instance to a fleet: R
// independent replicas behind a pluggable routing policy (round-robin,
// least-queue, least-kv, tenant-affinity), all fed from one seeded arrival
// stream the router splits deterministically. Replicas are heterogeneous
// capacity descriptors — each carries its own ServeSpec system, precision
// and admission policy — and run on real goroutines with a deterministic
// merge, so a fleet result is byte-identical at any GOMAXPROCS:
//
//	res, _ := optimus.ServeCluster(optimus.ClusterSpec{
//	    Replicas: []optimus.ClusterReplica{{Spec: capacity, Count: 4}},
//	    Routing:  optimus.LeastQueueRouting,
//	    PromptTokens: 200, GenTokens: 200,
//	    Rate: 8, Requests: 1024, Seed: 1,
//	})
//	fmt.Println(res.E2E.P95, res.PerReplica[0].Assigned)
//
// FindClusterKnee bisects the fleet arrival rate to the saturation knee —
// the highest rate whose fleet p95 E2E still meets a target SLO — instead
// of making the user eyeball a rate sweep. SweepSpec.Replicas and
// SweepSpec.Routings make the fleet size and routing policy sweep axes.
//
// The subpackages under internal/ hold the substrates (technology tables,
// µarch engine, hierarchical roofline, collectives, schedules, footprint
// model, DSE); this package re-exports the surface a downstream user needs.
package optimus

import (
	"context"
	"io"

	"optimus/internal/arch"
	"optimus/internal/cluster"
	"optimus/internal/comm"
	"optimus/internal/dse"
	"optimus/internal/infer"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/repro"
	"optimus/internal/serve"
	"optimus/internal/sweep"
	"optimus/internal/tech"
	"optimus/internal/train"
	"optimus/internal/uarch"
	"optimus/internal/workload"
)

// Core configuration and result types.
type (
	// Device is one accelerator in architecture-abstraction terms.
	Device = arch.Device
	// System is a cluster of devices with intra- and inter-node fabrics.
	System = arch.System
	// Link is one interconnect as seen by a device.
	Link = arch.Link
	// Model is a decoder-only transformer configuration.
	Model = model.Config
	// Mapping is a DP/TP/PP/SP parallelization strategy.
	Mapping = parallel.Mapping
	// TrainSpec describes one training experiment.
	TrainSpec = train.Spec
	// TrainResult is a per-iteration prediction with its breakdown.
	TrainResult = train.Result
	// InferSpec describes one inference experiment.
	InferSpec = infer.Spec
	// InferResult is an end-to-end latency prediction.
	InferResult = infer.Result
	// GEMMReport is one per-kernel row of the Table 4 analysis.
	GEMMReport = infer.GEMMReport
	// StepCost is one inference pass's compute/memory/comm decomposition
	// — the unit the serving simulator prices iterations in.
	StepCost = infer.StepCost
	// ServeSpec describes one continuous-batching serving simulation.
	ServeSpec = serve.Spec
	// ServeResult is a serving simulation outcome with SLO percentiles.
	ServeResult = serve.Result
	// ServeArrival selects the request arrival process.
	ServeArrival = serve.Arrival
	// ServePolicy selects the KV-cache admission policy.
	ServePolicy = serve.Policy
	// ServePercentiles summarizes one serving latency distribution.
	ServePercentiles = serve.Percentiles
	// ServeRequestMetrics is one simulated request's timeline.
	ServeRequestMetrics = serve.RequestMetrics
	// ServeRequest is one serving request's shape (tenant + per-request
	// prompt/generation lengths).
	ServeRequest = serve.Request
	// ServeTenantLoad is one tenant's contribution to a generated
	// multi-tenant workload mix (ServeSpec.Mix).
	ServeTenantLoad = serve.TenantLoad
	// ServeTraceEvent is one replayed request of a ServeSpec.Trace.
	ServeTraceEvent = serve.TraceEvent
	// ServeSchedule is a piecewise-constant arrival-rate timeline
	// (ServeSpec.Schedule); contiguous segments from time zero, the last
	// extending indefinitely. ("Schedule" alone names the pipeline
	// schedule, an older export.)
	ServeSchedule = workload.Schedule
	// ServeScheduleSegment is one ServeSchedule piece: Rate requests/sec
	// over [Start, End) seconds.
	ServeScheduleSegment = workload.Segment
	// ServeTenantMetrics is one tenant's SLO summary
	// (ServeResult.PerTenant).
	ServeTenantMetrics = serve.TenantMetrics
	// ServeInstance is a steppable single-replica simulator: push requests
	// at arrival times, observe load, drain — the driving surface cluster
	// routers are built on.
	ServeInstance = serve.Instance
	// ServeLoad is one instance's load snapshot (queue depth, in-flight
	// requests, KV pages/bytes held).
	ServeLoad = serve.Load

	// ClusterSpec describes one multi-replica fleet simulation.
	ClusterSpec = cluster.Spec
	// ClusterReplica is one fleet capacity descriptor (a ServeSpec carrying
	// capacity only, instantiated Count times).
	ClusterReplica = cluster.Replica
	// ClusterRouting selects the fleet routing policy.
	ClusterRouting = cluster.Routing
	// ClusterResult is a fleet simulation outcome with fleet-wide SLO
	// percentiles and per-replica shares.
	ClusterResult = cluster.Result
	// ClusterReplicaResult is one replica's share of a fleet simulation.
	ClusterReplicaResult = cluster.ReplicaResult
	// ClusterRequestMetrics is one completed request in the fleet-merged
	// view (global arrival index plus the replica that served it).
	ClusterRequestMetrics = cluster.RequestMetrics
	// ClusterKneeSpec describes one saturation-knee analysis.
	ClusterKneeSpec = cluster.KneeSpec
	// ClusterKnee is the knee analysis outcome.
	ClusterKnee = cluster.Knee
	// ClusterKneeProbe is one bisection evaluation of a knee analysis.
	ClusterKneeProbe = cluster.KneeProbe
	// MemoryBreakdown is a per-device training footprint.
	MemoryBreakdown = memfoot.Breakdown
	// MemorySpec describes a training-footprint query.
	MemorySpec = memfoot.TrainSpec
	// Design is a µarch design point (technology + budget + allocation).
	Design = uarch.Design
	// Budget is an area/power/perimeter envelope.
	Budget = uarch.Budget
	// Allocation divides a budget across µarch components.
	Allocation = uarch.Allocation
	// DSEOptions tune the design-space search.
	DSEOptions = dse.Options
	// DSEResult is the optimum found by the search.
	DSEResult = dse.Result
	// Precision is a numeric tensor format.
	Precision = tech.Precision
	// Recompute selects the activation recomputation regime.
	Recompute = memfoot.Recompute
	// Schedule selects the pipeline-parallel schedule.
	Schedule = parallel.Schedule
	// Table is a rendered reproduction of one paper experiment.
	Table = repro.Table

	// SweepSpec describes a cross-product experiment grid.
	SweepSpec = sweep.Spec
	// SweepResult is a ranked grid evaluation with execution statistics.
	SweepResult = sweep.Result
	// SweepRow is one ranked sweep candidate.
	SweepRow = sweep.Row
	// SweepPoint is one fully instantiated candidate experiment.
	SweepPoint = sweep.Point
	// SweepStats summarizes how a sweep executed (enumerated / pruned /
	// evaluated / memoized counts, workers, wall clock).
	SweepStats = sweep.Stats
	// SweepEngine is a reusable sweep evaluator whose memoization cache
	// persists across runs.
	SweepEngine = sweep.Engine
	// SweepWorkload selects the predictor a sweep exercises.
	SweepWorkload = sweep.Workload
	// SweepTenantSLO is one tenant's SLO summary within a serving sweep
	// candidate (SweepSpec.Mixes / SweepSpec.Trace grids).
	SweepTenantSLO = sweep.TenantSLO
	// SweepPoolSplit is one disaggregated prefill/decode pool split of the
	// SweepSpec.PoolSplits grid axis.
	SweepPoolSplit = sweep.PoolSplit
)

// Sweep workloads.
const (
	// TrainingSweep ranks strategies by predicted seconds per batch.
	TrainingSweep = sweep.Training
	// InferenceSweep ranks configurations by end-to-end request latency.
	InferenceSweep = sweep.Inference
	// ServingSweep simulates continuous batching per candidate and ranks
	// by p95 end-to-end latency.
	ServingSweep = sweep.Serving
)

// Serving arrival processes.
const (
	// PoissonArrivals is the open-loop process at ServeSpec.Rate req/s.
	PoissonArrivals = serve.Poisson
	// ClosedLoopArrivals models ServeSpec.Clients users with zero think
	// time.
	ClosedLoopArrivals = serve.ClosedLoop
)

// Serving KV-cache admission policies.
const (
	// ReserveFullPolicy reserves each request's full prompt+generation
	// KV context at admission (never preempts).
	ReserveFullPolicy = serve.ReserveFull
	// PagedPolicy allocates KV in ServeSpec.PageTokens-sized blocks that
	// grow as a request decodes, preempting LIFO (recompute on
	// readmission) under pressure.
	PagedPolicy = serve.Paged
	// DisaggregatedPolicy splits the KV capacity into prefill and decode
	// page pools (ServeSpec.PrefillDevices / DecodeDevices): requests
	// admit against the prefill pool on their prompt's pages, migrate to
	// the decode pool on first token — paying a per-request KV transfer
	// over the ServeSpec.TransferGBps interconnect — and decode growth
	// and preemption run against the decode pool only.
	DisaggregatedPolicy = serve.Disaggregated
	// DefaultPageTokens is PagedPolicy's block size when
	// ServeSpec.PageTokens is zero.
	DefaultPageTokens = serve.DefaultPageTokens
	// DefaultServeTransferGBps is DisaggregatedPolicy's KV-transfer
	// bandwidth when ServeSpec.TransferGBps is zero, in GB/s.
	DefaultServeTransferGBps = serve.DefaultTransferGBps
	// DefaultServeSwapGBps is the GPU↔host KV swap-link bandwidth when a
	// host tier is configured (ServeSpec.HostKVBytes > 0) but
	// ServeSpec.SwapGBps is zero, in GB/s (a PCIe-class link).
	DefaultServeSwapGBps = serve.DefaultSwapGBps
)

// Cluster routing policies.
const (
	// RoundRobinRouting routes arrival i to replica i mod R.
	RoundRobinRouting = cluster.RoundRobin
	// LeastQueueRouting routes each arrival to the replica with the fewest
	// in-flight requests at the arrival instant (ties to the lowest index).
	LeastQueueRouting = cluster.LeastQueue
	// LeastKVRouting routes each arrival to the replica holding the fewest
	// KV-cache bytes at the arrival instant.
	LeastKVRouting = cluster.LeastKV
	// TenantAffinityRouting pins each tenant to one home replica by a hash
	// of its name — session/prefix-cache affinity.
	TenantAffinityRouting = cluster.TenantAffinity
	// DefaultClusterKneeTolerance is FindClusterKnee's relative bracket
	// tolerance when ClusterKneeSpec.Tolerance is zero.
	DefaultClusterKneeTolerance = cluster.DefaultKneeTolerance
)

// Precisions.
const (
	FP32 = tech.FP32
	TF32 = tech.TF32
	BF16 = tech.BF16
	FP16 = tech.FP16
	FP8  = tech.FP8
	FP4  = tech.FP4
	INT8 = tech.INT8
)

// Recomputation regimes (§3.3).
const (
	NoRecompute        = memfoot.NoRecompute
	SelectiveRecompute = memfoot.Selective
	FullRecompute      = memfoot.Full
)

// Pipeline schedules (§3.2).
const (
	GPipe           = parallel.GPipe
	OneFOneB        = parallel.OneFOneB
	Interleaved1F1B = parallel.Interleaved1F1B
)

// ModelByName returns a preset LLM configuration ("gpt-175b",
// "llama2-13b", ...), case- and punctuation-insensitively.
func ModelByName(name string) (Model, error) { return model.ByName(name) }

// Models returns the full preset zoo.
func Models() []Model { return model.All() }

// DeviceByName returns a preset accelerator ("a100", "h100", "h200",
// "b100", "b200", "v100", "p4", "tpuv4").
func DeviceByName(name string) (Device, error) { return arch.DeviceByName(name) }

// NewSystem assembles a cluster of n preset devices in nodes of 8 with the
// named fabrics (e.g. "nvlink3"/"nvlink4"/"nvlink5" inside, "hdr"/"ndr"/
// "nvs" between nodes).
func NewSystem(device string, n int, intra, inter string) (*System, error) {
	dev, err := arch.DeviceByName(device)
	if err != nil {
		return nil, err
	}
	it, err := tech.ParseNetwork(intra)
	if err != nil {
		return nil, err
	}
	et, err := tech.ParseNetwork(inter)
	if err != nil {
		return nil, err
	}
	return arch.SystemOf(dev, n, 8, it, et)
}

// PredictTraining estimates the time per training batch (§4.2's validated
// predictor).
func PredictTraining(s TrainSpec) (TrainResult, error) { return train.Predict(s) }

// PredictInference estimates end-to-end inference latency (§4.3's
// validated predictor).
func PredictInference(s InferSpec) (InferResult, error) { return infer.Predict(s) }

// PrefillGEMMTable analyzes the summarization-phase matrix multiplies of
// one transformer layer (Table 4).
func PrefillGEMMTable(s InferSpec) ([]GEMMReport, error) { return infer.PrefillGEMMTable(s) }

// PrefillCost prices the summarization pass of one request batch — the
// per-phase compute/memory/comm decomposition the serving simulator builds
// on.
func PrefillCost(s InferSpec) (StepCost, error) { return infer.PrefillCost(s) }

// DecodeStepCost prices one autoregressive decode step at KV length kvLen
// for a batch of concurrent sequences; summing steps over
// kvLen = PromptTokens+1 .. PromptTokens+GenTokens reproduces
// PredictInference's decode time.
func DecodeStepCost(s InferSpec, kvLen, batch int) (StepCost, error) {
	return infer.DecodeStepCost(s, kvLen, batch)
}

// Serve runs the discrete-event continuous-batching serving simulator;
// results are byte-identical across repeated invocations at a fixed seed.
func Serve(s ServeSpec) (ServeResult, error) { return serve.Run(s) }

// ParseServePolicy resolves a CLI admission-policy token ("reserve",
// "paged").
func ParseServePolicy(s string) (ServePolicy, error) { return serve.ParsePolicy(s) }

// DefaultServeTenant names the tenant of the degenerate single-tenant
// workload the spec-wide ServeSpec.PromptTokens/GenTokens describe.
const DefaultServeTenant = serve.DefaultTenant

// ParseServeMix parses the CLI multi-tenant mix syntax: comma-separated
// "tenant:share:prompt:gen" entries, each optionally extended to
// "tenant:share:prompt:gen:prefix[:prefix-id]" for shared-prefix loads.
func ParseServeMix(s string) ([]ServeTenantLoad, error) { return serve.ParseMix(s) }

// FormatServeMix renders a mix back into the ParseServeMix syntax.
func FormatServeMix(mix []ServeTenantLoad) string { return serve.FormatMix(mix) }

// ParseServeTrace reads a serving trace in CSV form — one request per row
// as "arrival,tenant,prompt,gen" (v1),
// "arrival,tenant,prompt,gen,prefix_id,prefix_tokens" (v2), or the
// v3 eight-column form appending "session,turn" for multi-turn session
// rows — optional header — and validates it.
func ParseServeTrace(r io.Reader) ([]ServeTraceEvent, error) { return serve.ParseTrace(r) }

// FormatServeTrace renders a trace back into the ParseServeTrace CSV
// syntax: the v3 eight-column form iff any event carries session fields,
// the v2 six-column form iff any carries a prefix, v1 otherwise.
func FormatServeTrace(w io.Writer, events []ServeTraceEvent) error {
	return serve.FormatTrace(w, events)
}

// ParseServeSchedule parses the CLI piecewise arrival-rate schedule
// syntax: comma-separated "start-end:rate" segments in seconds and
// requests/sec, e.g. "0-60:5,60-120:25" (ServeSpec.Schedule).
func ParseServeSchedule(s string) (ServeSchedule, error) { return workload.ParseSchedule(s) }

// FormatServeSchedule renders a schedule back into the ParseServeSchedule
// syntax.
func FormatServeSchedule(s ServeSchedule) string { return workload.FormatSchedule(s) }

// CanonicalServeSchedule reduces a (schedule, rate) pair to canonical
// form: adjacent equal-rate segments merge, and a constant schedule
// collapses to (nil, rate) — the byte-identical plain Poisson process.
func CanonicalServeSchedule(s ServeSchedule, rate float64) (ServeSchedule, float64) {
	return workload.CanonicalSchedule(s, rate)
}

// NewServeInstance builds a steppable single-replica simulator from a
// capacity-only ServeSpec (no workload or arrival fields) and the envelope
// of request shapes it may be asked to serve; ServeCluster drives R of
// them behind a routing policy.
func NewServeInstance(s ServeSpec, envelope []ServeRequest) (*ServeInstance, error) {
	return serve.NewInstance(s, envelope)
}

// ServeCluster runs the multi-replica fleet simulator: R independent
// serving simulations behind a deterministic routing policy, fed from one
// seeded fleet-wide arrival stream. Replicas run on parallel goroutines;
// results merge deterministically, so a fleet result is byte-identical at
// any GOMAXPROCS.
func ServeCluster(s ClusterSpec) (ClusterResult, error) { return cluster.Run(s) }

// FindClusterKnee bisects the fleet arrival rate to the saturation knee:
// the highest rate whose fleet p95 E2E latency still meets the target SLO.
// The probe sequence is fully deterministic, so repeated analyses are
// byte-identical.
func FindClusterKnee(ks ClusterKneeSpec) (ClusterKnee, error) { return cluster.FindKnee(ks) }

// ParseClusterRouting resolves a CLI routing-policy token ("round-robin",
// "least-queue", "least-kv", "tenant-affinity", or the short aliases "rr",
// "lq", "lkv", "affinity").
func ParseClusterRouting(s string) (ClusterRouting, error) { return cluster.ParseRouting(s) }

// TrainingMemory returns the per-device training footprint (§5.1).
func TrainingMemory(s MemorySpec) (MemoryBreakdown, error) { return memfoot.Train(s) }

// FitsDevice reports whether a footprint fits a device capacity.
func FitsDevice(b MemoryBreakdown, capacity float64) bool {
	return memfoot.FitsDevice(b, capacity)
}

// OptimizeDesign runs the §3.6 design-space exploration: a projected
// gradient-descent search over the µarch resource allocation minimizing
// the objective (typically a PredictTraining closure).
func OptimizeDesign(base Design, objective func(Design) (float64, error), o DSEOptions) (DSEResult, error) {
	return dse.Optimize(base, objective, o)
}

// DeriveDevice turns a µarch design into an abstract device via the
// microarchitecture engine.
func DeriveDevice(d Design) (Device, error) {
	res, err := uarch.Derive(d)
	if err != nil {
		return Device{}, err
	}
	return res.Device, nil
}

// DeriveSystem assembles a cluster of n derived devices in nodes of
// devicesPerNode.
func DeriveSystem(d Design, n, devicesPerNode int) (*System, error) {
	return uarch.SystemFrom(d, n, devicesPerNode)
}

// ReadDeviceJSON parses an external device description (paper §3.1: the
// abstraction layer accepts high-level system descriptions directly,
// avoiding microarchitecture calibration for new hardware).
func ReadDeviceJSON(r io.Reader) (Device, error) { return arch.ReadDevice(r) }

// ReadSystemJSON parses an external full-system description.
func ReadSystemJSON(r io.Reader) (*System, error) { return arch.ReadSystem(r) }

// WriteDeviceJSON exports a device in the external JSON format, so presets
// can be dumped, edited and reloaded.
func WriteDeviceJSON(w io.Writer, d Device) error { return arch.WriteDevice(w, d) }

// Sweep evaluates a cross-product experiment grid concurrently: candidates
// are enumerated deterministically, pruned by the memory-feasibility model
// before costing, deduplicated and memoized, and ranked fitting-first then
// by predicted time — the same ranking at any worker count. Cancel ctx to
// stop a large grid early.
func Sweep(ctx context.Context, s SweepSpec) (SweepResult, error) { return sweep.Run(ctx, s) }

// SweepSerial evaluates the grid one candidate at a time — the golden
// reference path the concurrent engine is tested against, and the baseline
// for its speedup benchmarks.
func SweepSerial(s SweepSpec) (SweepResult, error) { return sweep.Serial(s) }

// NewSweepEngine returns a reusable sweep evaluator with the given worker
// count (0 means GOMAXPROCS); successive Run calls share its memoization
// cache, so overlapping grids are costed once.
func NewSweepEngine(workers int) *SweepEngine { return sweep.New(workers) }

// Reproduce regenerates one of the paper's experiments ("table1",
// "table2", "table4", "fig3".."fig9") and returns its rendered table.
func Reproduce(id string) (Table, error) { return repro.Run(id) }

// Experiments lists the reproducible experiment IDs.
func Experiments() []string { return repro.IDs() }

// RingAllReduceTime exposes the Eq. (3) collective model.
func RingAllReduceTime(bytes float64, n int, link Link) float64 {
	return comm.AllReduceTime(comm.Ring, bytes, n, link)
}

// TreeAllReduceTime exposes the Eq. (4) collective model.
func TreeAllReduceTime(bytes float64, n int, link Link) float64 {
	return comm.AllReduceTime(comm.DoubleBinaryTree, bytes, n, link)
}
